"""``appsweep`` — application fidelity across topology x routing x repair.

The first experiment exercising all four prior subsystems at once: the
pluggable architecture layer supplies the device topologies, the
post-fabrication repair stage supplies the tuned device axis, the pass
pipeline supplies the routing-strategy axis, and the execution engine
runs both waves (device construction, then compile+score) as cached,
seeded task batches.

For every registered topology the driver fabricates one chiplet batch
(at the paper's scaling-target precision, so even the collision-prone
square lattice yields), assembles a small MCM grid from the as-fab bin
and — from the *same* fabricated dies — from the repaired bin, and
scores a top-k ensemble of the assembled devices on a benchmark subset
under every registered routing strategy.  Rows report the ensemble's
median log10 fidelity with an order-statistic spread interval
(:func:`repro.stats.median_interval`) and the fidelity ratio against
the untuned/basic-routing baseline of the same (topology, benchmark).

Seeding is registry-position-stable at every level (topologies, then
benchmarks), so filtering any axis (``--topology``, ``--benchmarks``,
``--routing``) reproduces exactly the corresponding rows of the full
sweep at the same master seed, and ``--jobs N`` is bit-identical to a
sequential run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import inf, isinf, isnan

import numpy as np

from repro.analysis.appeval import (
    EnsembleSummary,
    benchmark_seeds,
    run_compile_jobs,
    summarise_ensemble,
)
from repro.analysis.reporting import format_table
from repro.core.architecture import ARCHITECTURES, get_architecture
from repro.core.assembly import assemble_mcms, fabricate_chiplet_bin, rank_devices
from repro.core.chiplet import ChipletDesign
from repro.core.fabrication import FabricationModel, SIGMA_SCALING_TARGET_GHZ
from repro.core.fidelity import default_link_scenarios
from repro.core.mcm import MCMDesign
from repro.device.calibration import washington_cx_model
from repro.device.device import Device
from repro.engine.dispatch import run_calls
from repro.engine.seeding import spawn_seed_at, spawn_seeds
from repro.tuning import TuningOptions

__all__ = ["AppSweepRow", "AppSweepResult", "build_appsweep_devices", "run_appsweep"]

#: Benchmark subset compiled by default (one chain, one random-graph,
#: one oracle circuit — the three routing-behaviour classes).
DEFAULT_APPSWEEP_BENCHMARKS = ("bv", "qaoa", "ghz")

#: Ensemble size scored per configuration.
DEFAULT_TOP_K = 3


def build_appsweep_devices(
    topology: str,
    chiplet_qubits: int,
    grid: tuple[int, int],
    batch_size: int,
    sigma_ghz: float,
    seed: int | None,
    top_k: int,
    tuning: TuningOptions | None = None,
) -> list[Device]:
    """Fabricate, (optionally) repair, assemble; return the top-k devices.

    A module-level function of picklable arguments — one engine task per
    (topology, repair-axis) point.  The tuned and untuned variants share
    ``seed``, so they screen the *same* fabricated dies; only the repair
    stage differs.
    """
    arch = get_architecture(topology)
    design = ChipletDesign.build(chiplet_qubits, topology=arch.name)
    mcm_design = MCMDesign.build(design, *grid)
    cx_model = washington_cx_model(seed=11)
    rng = np.random.default_rng(seed)
    chiplet_bin = fabricate_chiplet_bin(
        design,
        FabricationModel(sigma_ghz=sigma_ghz),
        cx_model,
        batch_size=batch_size,
        rng=rng,
        tuning=tuning,
    )
    scenario = default_link_scenarios()[0]
    assembly = assemble_mcms(chiplet_bin, mcm_design, scenario.link_model, rng=rng)
    axis = "tuned" if tuning is not None else "as-fab"
    return rank_devices(assembly.mcms, top_k, f"{arch.name}-{axis}")


@dataclass
class AppSweepRow:
    """One (topology, repair, routing, benchmark) configuration's scores."""

    topology: str
    tuned: bool
    routing: str
    benchmark: str
    width: int
    num_devices: int
    median_log10_fidelity: float
    spread_low: float
    spread_high: float
    median_swaps: float
    ratio_vs_baseline: float


@dataclass
class AppSweepResult:
    """Application-fidelity grid over topology x repair x routing."""

    chiplet_qubits: int
    grid: tuple[int, int]
    sigma_ghz: float
    batch_size: int
    top_k: int
    utilisation: float
    rows: list[AppSweepRow] = field(default_factory=list)

    def rows_for(
        self,
        topology: str | None = None,
        routing: str | None = None,
        tuned: bool | None = None,
        benchmark: str | None = None,
    ) -> list[AppSweepRow]:
        """Rows matching every provided filter."""
        return [
            row
            for row in self.rows
            if (topology is None or row.topology == topology)
            and (routing is None or row.routing == routing)
            and (tuned is None or row.tuned == tuned)
            and (benchmark is None or row.benchmark == benchmark)
        ]

    def format_table(self) -> str:
        """Render every configuration row."""
        header = [
            "topology", "devices", "routing", "benchmark",
            "ensemble", "median log10F", "spread", "swaps", "ratio",
        ]
        body = []
        for row in self.rows:
            if isnan(row.median_log10_fidelity):
                median = "-"
                spread = "-"
            else:
                median = f"{row.median_log10_fidelity:.3f}"
                spread = (
                    f"[{row.spread_low:.3f}, {row.spread_high:.3f}]"
                    if not isnan(row.spread_low)
                    else "-"
                )
            if isnan(row.ratio_vs_baseline):
                ratio = "-"
            elif isinf(row.ratio_vs_baseline):
                ratio = "inf"
            else:
                ratio = f"{row.ratio_vs_baseline:.3g}"
            body.append(
                [
                    row.topology,
                    "tuned" if row.tuned else "as-fab",
                    row.routing,
                    row.benchmark,
                    row.num_devices,
                    median,
                    spread,
                    "-" if isnan(row.median_swaps) else f"{row.median_swaps:g}",
                    ratio,
                ]
            )
        return format_table(header, body)


def run_appsweep(
    topologies: tuple[str, ...] | None = None,
    benchmarks: tuple[str, ...] | None = None,
    routings: tuple[str, ...] | None = None,
    chiplet_qubits: int = 18,
    grid: tuple[int, int] = (1, 2),
    batch_size: int = 400,
    sigma_ghz: float = SIGMA_SCALING_TARGET_GHZ,
    utilisation: float = 0.8,
    top_k: int = DEFAULT_TOP_K,
    seed: int = 7,
    engine=None,
    tuning: TuningOptions | None = None,
) -> AppSweepResult:
    """Application-level fidelity across topology x routing x repair.

    Parameters
    ----------
    topologies:
        Registered topology names (default: every registered topology).
    benchmarks:
        Benchmark names to compile
        (default: :data:`DEFAULT_APPSWEEP_BENCHMARKS`).
    routings:
        Registered routing strategy names (default: every registered
        strategy).  The ratio baseline — the untuned ``"basic"`` axis —
        is compiled even when this filter excludes it from the emitted
        rows, so the ratio column of a filtered sweep matches the full
        run's.
    chiplet_qubits, grid:
        Chiplet size and MCM grid (defaults mirror ``topomcm``: 18-qubit
        chiplets so the ring chain's period-3 plan fits, in a 1x2
        module).
    batch_size:
        Fabricated dies per (topology, repair-axis) point.
    sigma_ghz:
        Fabrication precision (default: the paper's scaling target,
        0.006 GHz, so every topology yields).
    utilisation:
        Benchmark width as a fraction of device qubits (paper: 80 %).
    top_k:
        Devices per ensemble (the ``count`` of
        :meth:`~repro.analysis.study.MCMResult.top_devices`-style
        ranking).
    seed:
        Master seed; see the module docstring for the derivation tree.
    engine:
        Optional :class:`repro.engine.ExecutionEngine` both waves fan
        out through.
    tuning:
        Repair options for the tuned axis (default: greedy local repair
        at the tuner-model defaults).
    """
    from repro.compiler.pipeline import ROUTING_STRATEGIES

    topo_names = tuple(
        get_architecture(name).name
        for name in (topologies if topologies else ARCHITECTURES.names())
    )
    bench_names = tuple(benchmarks) if benchmarks else DEFAULT_APPSWEEP_BENCHMARKS
    routing_names = tuple(
        ROUTING_STRATEGIES.get(name).name
        for name in (routings if routings else ROUTING_STRATEGIES.names())
    )
    # The ratio baseline is always the untuned default-routing axis; it
    # is compiled even when ``routings`` filters it out of the emitted
    # rows, so a filtered sweep's ratio column matches the full run's.
    baseline_routing = "basic" if "basic" in ROUTING_STRATEGIES else routing_names[0]
    compile_routings = tuple(dict.fromkeys((baseline_routing, *routing_names)))
    tuned_options = tuning if tuning is not None else TuningOptions.build()

    # Registry-position-stable seed tree: one child per registered
    # topology; below it, child 0 feeds fabrication and child 1 spawns
    # the per-benchmark circuit seeds.
    registry_names = ARCHITECTURES.names()
    topo_seeds = dict(zip(registry_names, spawn_seeds(seed, len(registry_names))))

    # Wave 1: device ensembles, one task per (topology, repair axis).
    device_jobs: list[tuple[str, bool]] = []
    device_kwargs: list[dict] = []
    for topology in topo_names:
        fab_seed = spawn_seed_at(topo_seeds[topology], 0)
        for tuned in (False, True):
            device_jobs.append((topology, tuned))
            device_kwargs.append(
                dict(
                    topology=topology,
                    chiplet_qubits=chiplet_qubits,
                    grid=grid,
                    batch_size=batch_size,
                    sigma_ghz=sigma_ghz,
                    seed=fab_seed,
                    top_k=top_k,
                    tuning=tuned_options if tuned else None,
                )
            )
    ensembles = dict(
        zip(
            device_jobs,
            run_calls(
                build_appsweep_devices, device_kwargs, engine, name="appsweep.devices"
            ),
        )
    )

    # Wave 2: compile+score, one task per (config, benchmark, device).
    mcm_qubits = chiplet_qubits * grid[0] * grid[1]
    width = max(2, int(round(utilisation * mcm_qubits)))
    compile_kwargs: list[dict] = []
    compile_slices: dict[tuple[str, bool, str, str], list[int]] = {}
    for topology in topo_names:
        circuit_seeds = benchmark_seeds(spawn_seed_at(topo_seeds[topology], 1))
        for tuned in (False, True):
            devices = ensembles[(topology, tuned)]
            # Only the untuned axis needs the (possibly filtered-out)
            # baseline routing compiled — it anchors every ratio.
            for routing in (compile_routings if not tuned else routing_names):
                for benchmark in bench_names:
                    indices = []
                    for device in devices:
                        indices.append(len(compile_kwargs))
                        compile_kwargs.append(
                            dict(
                                benchmark=benchmark,
                                width=width,
                                circuit_seed=circuit_seeds[benchmark],
                                device=device,
                                routing=routing,
                            )
                        )
                    compile_slices[(topology, tuned, routing, benchmark)] = indices
    scores = run_compile_jobs(compile_kwargs, engine)

    summaries: dict[tuple[str, bool, str, str], EnsembleSummary] = {
        key: summarise_ensemble([scores[i] for i in indices])
        for key, indices in compile_slices.items()
    }

    result = AppSweepResult(
        chiplet_qubits=chiplet_qubits,
        grid=grid,
        sigma_ghz=sigma_ghz,
        batch_size=batch_size,
        top_k=top_k,
        utilisation=utilisation,
    )
    for topology in topo_names:
        for tuned in (False, True):
            for routing in routing_names:
                for benchmark in bench_names:
                    summary = summaries[(topology, tuned, routing, benchmark)]
                    baseline = summaries.get(
                        (topology, False, baseline_routing, benchmark)
                    )
                    spread = summary.spread
                    result.rows.append(
                        AppSweepRow(
                            topology=topology,
                            tuned=tuned,
                            routing=routing,
                            benchmark=benchmark,
                            width=width,
                            num_devices=summary.num_devices,
                            median_log10_fidelity=summary.median_log10_fidelity,
                            spread_low=spread.low if spread else float("nan"),
                            spread_high=spread.high if spread else float("nan"),
                            median_swaps=summary.median_swaps,
                            ratio_vs_baseline=(
                                1.0
                                if (not tuned and routing == baseline_routing
                                    and not isnan(summary.median_log10_fidelity)
                                    and summary.median_log10_fidelity != -inf)
                                else summary.ratio_vs(baseline)
                            ),
                        )
                    )
    return result
