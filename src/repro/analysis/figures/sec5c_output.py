"""Section V-C — fabrication-output comparison (the ~7.7x worked example).

The two input yields come from Monte-Carlo runs, so the comparison now
carries their binomial confidence intervals through Eq. 1: device counts
and the output gain are reported with conservative error bars.
"""

from __future__ import annotations

from repro.core.fabrication import SIGMA_LASER_TUNED_GHZ
from repro.core.output_model import fabrication_output_from_results
from repro.core.yield_model import yield_vs_qubits
from repro.stats import StatsOptions

__all__ = ["run_sec5c_fabrication_output"]


def run_sec5c_fabrication_output(
    monolithic_qubits: int = 100,
    chiplet_qubits: int = 10,
    grid: tuple[int, int] = (2, 5),
    batch_size: int = 1000,
    sigma_ghz: float = SIGMA_LASER_TUNED_GHZ,
    seed: int = 7,
    engine=None,
    stats: StatsOptions | None = None,
):
    """Regenerate the Section V-C worked example (about a 7.7x output gain)."""
    curve = yield_vs_qubits(
        sigma_ghz=sigma_ghz,
        step_ghz=0.06,
        sizes=(chiplet_qubits, monolithic_qubits),
        batch_size=batch_size,
        seed=seed,
        executor=engine,
        stats=stats,
    )
    return fabrication_output_from_results(
        monolithic_result=curve.at_size(monolithic_qubits),
        chiplet_result=curve.at_size(chiplet_qubits),
        grid_rows=grid[0],
        grid_cols=grid[1],
        batch_size=batch_size,
    )
