"""Fig. 6 — configuration counting and the assembled-MCM bound."""

from __future__ import annotations

from repro.core.chiplet import ChipletDesign
from repro.core.configurations import configuration_curve
from repro.core.fabrication import SIGMA_LASER_TUNED_GHZ
from repro.core.yield_model import yield_vs_qubits

__all__ = ["run_fig6_configurations"]


def run_fig6_configurations(
    chiplet_yield: float | None = None,
    batch_size: int = 100_000,
    chiplet_qubits: int = 20,
    max_grid: int = 7,
    seed: int = 7,
    engine=None,
):
    """Regenerate Fig. 6 (configurations and assembled-MCM bound vs. size).

    When ``chiplet_yield`` is ``None`` the yield of the 20-qubit chiplet is
    measured by Monte-Carlo at the state-of-the-art precision, mirroring the
    paper's ~69.4 % figure.  The measurement is a fixed-seed single point,
    so repeated runs (and any sweep that wraps this figure) reuse banked
    fabrication draws through :mod:`repro.core.sample_bank` automatically.
    """
    if chiplet_yield is None:
        design = ChipletDesign.build(chiplet_qubits)
        curve = yield_vs_qubits(
            sigma_ghz=SIGMA_LASER_TUNED_GHZ,
            step_ghz=0.06,
            sizes=(chiplet_qubits,),
            batch_size=5000,
            seed=seed,
            lattices={chiplet_qubits: design.lattice},
            executor=engine,
        )
        chiplet_yield = curve.yields[0]
    return configuration_curve(
        chiplet_yield=chiplet_yield,
        batch_size=batch_size,
        chiplet_qubits=chiplet_qubits,
        max_grid=max_grid,
    )
