"""Fig. 7 — detuning vs. CX infidelity empirical model."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import format_table
from repro.device.calibration import washington_cx_model

__all__ = ["Fig7Result", "run_fig7_detuning_model"]


@dataclass
class Fig7Result:
    """Summary of the empirical detuning-binned CX model."""

    median: float
    mean: float
    bin_means: dict[float, float]
    num_points: int

    def format_table(self) -> str:
        """Render the per-bin mean infidelities."""
        header = ["bin centre (GHz)", "mean CX infidelity"]
        body = [[f"{centre:.2f}", f"{value:.4f}"] for centre, value in sorted(self.bin_means.items())]
        return format_table(header, body)


def run_fig7_detuning_model(seed: int = 11) -> Fig7Result:
    """Regenerate the Fig. 7 data summary (median 1.2 %, mean 1.8 %)."""
    model = washington_cx_model(seed=seed)
    return Fig7Result(
        median=model.median(),
        mean=model.mean(),
        bin_means=model.bin_means(),
        num_points=model.num_observations,
    )
