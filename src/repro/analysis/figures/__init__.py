"""Per-experiment modules regenerating every figure/table of the paper.

The former ``analysis/experiments.py`` monolith is decomposed here, one
module per figure or table.  Every driver keeps its historical name and
signature (``analysis.experiments`` re-exports them as a compatibility
shim) and gains engine awareness where it sweeps Monte-Carlo points:

==========================  =============================================
Module                      Experiment
==========================  =============================================
``fig3_trends``             Fig. 3(b) processor-size infidelity trends
``tables``                  Table I collision criteria, Table II compiles
``fig4_yield``              Fig. 4 yield-vs-qubits grid (engine-parallel)
``fig6_configurations``     Fig. 6 configuration counting
``sec5c_output``            Section V-C fabrication-output comparison
``fig7_detuning``           Fig. 7 detuning-binned CX model
``fig8_mcm``                Fig. 8 MCM vs. monolithic yield comparison
``fig9_heatmaps``           Fig. 9 average-infidelity heat-maps
``fig10_apps``              Fig. 10 application-level fidelity ratios
``topologies``              cross-topology yield / MCM comparisons
``tuning``                  as-fab vs. repaired yield, repair-budget sweep
``appsweep``                topology x routing x repair application sweep
==========================  =============================================

The CLI-facing experiment registry lives in ``repro.analysis.registry``.
"""

from repro.analysis.figures.appsweep import (
    AppSweepResult,
    AppSweepRow,
    run_appsweep,
)
from repro.analysis.figures.fig3_trends import Fig3Result, run_fig3_processor_trends
from repro.analysis.figures.fig4_yield import Fig4Result, run_fig4_yield_sweep
from repro.analysis.figures.fig6_configurations import run_fig6_configurations
from repro.analysis.figures.fig7_detuning import Fig7Result, run_fig7_detuning_model
from repro.analysis.figures.fig8_mcm import Fig8Result, run_fig8_yield_comparison
from repro.analysis.figures.fig9_heatmaps import Fig9Result, run_fig9_infidelity_heatmap
from repro.analysis.figures.fig10_apps import Fig10Result, run_fig10_applications
from repro.analysis.figures.sec5c_output import run_sec5c_fabrication_output
from repro.analysis.figures.topologies import (
    TopologyMCMResult,
    TopologyYieldResult,
    run_topology_mcm_comparison,
    run_topology_yield_comparison,
)
from repro.analysis.figures.tables import (
    Table1Result,
    Table2Result,
    run_table1_collision_criteria,
    run_table2_compiled_benchmarks,
)
from repro.analysis.figures.tuning import (
    RepairBudgetResult,
    TunedYieldResult,
    run_repair_budget_sweep,
    run_tuned_yield_comparison,
)

__all__ = [
    "AppSweepResult",
    "AppSweepRow",
    "run_appsweep",
    "Fig3Result",
    "Fig4Result",
    "Fig7Result",
    "Fig8Result",
    "Fig9Result",
    "Fig10Result",
    "Table1Result",
    "Table2Result",
    "TopologyMCMResult",
    "TopologyYieldResult",
    "RepairBudgetResult",
    "TunedYieldResult",
    "run_fig3_processor_trends",
    "run_fig4_yield_sweep",
    "run_fig6_configurations",
    "run_fig7_detuning_model",
    "run_fig8_yield_comparison",
    "run_fig9_infidelity_heatmap",
    "run_fig10_applications",
    "run_sec5c_fabrication_output",
    "run_table1_collision_criteria",
    "run_table2_compiled_benchmarks",
    "run_topology_mcm_comparison",
    "run_topology_yield_comparison",
    "run_repair_budget_sweep",
    "run_tuned_yield_comparison",
]
