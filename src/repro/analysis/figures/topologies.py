"""Cross-topology comparison experiments (beyond the paper's figures).

Two registry experiments put the pluggable architecture layer to work:

``topoyield``
    The Fig. 4 yield-vs-size sweep run once per registered topology at a
    common fabrication precision and detuning step.  Denser lattices
    impose more simultaneous collision constraints per qubit, so the
    curves collapse in topology order — square (degree 4, five packed
    frequencies) first, heavy-hex (degree 3) next, the chain (degree 2)
    last — making the collision phase transition's sharpness directly
    comparable across scenarios.

``topomcm``
    End-to-end chiplet -> KGD bin -> MCM assembly for every topology:
    fabricate a batch of chiplets, screen them, stitch the survivors
    into a small MCM grid, and compare collision-free yield, assembled
    module count and post-assembly yield side by side.  Runs at the
    paper's scaling-target precision (sigma = 0.006 GHz) so that even
    the collision-prone square lattice produces a populated bin.

Both experiments submit their per-topology work through the execution
engine when one is supplied, with positional child seeds so results are
independent of execution order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.architecture import ARCHITECTURES, get_architecture
from repro.core.assembly import assemble_mcms, fabricate_chiplet_bin, post_assembly_yield
from repro.core.chiplet import ChipletDesign
from repro.core.fabrication import (
    FabricationModel,
    SIGMA_LASER_TUNED_GHZ,
    SIGMA_SCALING_TARGET_GHZ,
)
from repro.core.fidelity import default_link_scenarios
from repro.core.mcm import MCMDesign
from repro.core.yield_model import (
    YieldResult,
    _stats_point_kwargs,
    _topology_kwargs,
    _tuning_kwargs,
    simulate_yield_point,
)
from repro.device.calibration import washington_cx_model
from repro.engine.dispatch import run_calls
from repro.engine.seeding import spawn_seeds
from repro.stats import StatsOptions
from repro.tuning import TuningOptions

__all__ = [
    "TopologyYieldResult",
    "TopologyMCMRow",
    "TopologyMCMResult",
    "run_topology_yield_comparison",
    "run_topology_mcm_comparison",
]

#: Device sizes probed by the cross-topology yield sweep.
DEFAULT_COMPARISON_SIZES = (5, 10, 20, 40, 65, 100, 200, 300, 500)


def _seeds_by_topology(seed: int | None) -> dict[str, int | None]:
    """One child seed per *registered* topology, keyed by name.

    Seeds derive from each topology's position in the registry — never
    from its position in a caller-filtered selection — so restricting a
    comparison to a subset (``--topology square``) reproduces exactly
    the rows of the full run at the same master seed.
    """
    names = ARCHITECTURES.names()
    return dict(zip(names, spawn_seeds(seed, len(names))))


@dataclass
class TopologyYieldResult:
    """One yield-vs-size curve per registered topology.

    Attributes
    ----------
    sizes:
        Device sizes along every curve.
    sigma_ghz, step_ghz:
        Shared fabrication precision and detuning step.
    curves:
        Topology name -> per-size :class:`YieldResult` points.
    """

    sizes: tuple[int, ...]
    sigma_ghz: float
    step_ghz: float
    curves: dict[str, list[YieldResult]] = field(default_factory=dict)

    def yields(self, topology: str) -> list[float]:
        """Plain yield fractions of one topology's curve."""
        return [p.collision_free_yield for p in self.curves[topology]]

    def half_yield_size(self, topology: str) -> int | None:
        """Smallest probed size whose yield drops below one half.

        A proxy for the collision phase-transition location: the denser
        the topology, the earlier the curve crosses 0.5.  ``None`` when
        the curve never drops below a half over the probed sizes.
        """
        for point in self.curves[topology]:
            if point.collision_free_yield < 0.5:
                return point.num_qubits
        return None

    def format_table(self) -> str:
        """Render the per-topology yield grid (one row per topology)."""
        header = ["topology", "n_half"] + [str(s) for s in self.sizes]
        body = []
        for topology in self.curves:
            half = self.half_yield_size(topology)
            body.append(
                [topology, "-" if half is None else str(half)]
                + [f"{y:.3f}" for y in self.yields(topology)]
            )
        return format_table(header, body)


def run_topology_yield_comparison(
    topologies: tuple[str, ...] | None = None,
    sizes: tuple[int, ...] = DEFAULT_COMPARISON_SIZES,
    sigma_ghz: float = SIGMA_LASER_TUNED_GHZ,
    step_ghz: float = 0.06,
    batch_size: int = 1000,
    seed: int = 7,
    engine=None,
    stats: StatsOptions | None = None,
    tuning: TuningOptions | None = None,
) -> TopologyYieldResult:
    """Collision-free yield vs. size for every registered topology.

    Every (topology, size) point becomes one engine task and the whole
    grid is submitted as a single flat batch, so a parallel engine sees
    the full width of the comparison at once — no barrier between
    topologies.  Seeding is two-level and position-stable: each
    topology's curve seed comes from its position in the *registry* (see
    :func:`_seeds_by_topology`), and each curve spawns per-size point
    seeds from it, so results are bit-identical however the work is
    executed or filtered.
    """
    curve_seeds = _seeds_by_topology(seed)
    names = tuple(
        get_architecture(topology).name
        for topology in (topologies if topologies else ARCHITECTURES.names())
    )
    result = TopologyYieldResult(sizes=sizes, sigma_ghz=sigma_ghz, step_ghz=step_ghz)
    stats_kwargs = _stats_point_kwargs(stats)
    tuning_kwargs = _tuning_kwargs(tuning)

    kwargs_list = []
    for topology in names:
        arch = get_architecture(topology)
        lattices = {size: arch.lattice(size) for size in sizes}
        point_seeds = spawn_seeds(curve_seeds[topology], len(sizes))
        for size, child_seed in zip(sizes, point_seeds):
            kwargs_list.append(
                dict(
                    sigma_ghz=sigma_ghz,
                    step_ghz=step_ghz,
                    num_qubits=size,
                    batch_size=batch_size,
                    seed=child_seed,
                    thresholds=None,
                    lattice=lattices[size],
                    **stats_kwargs,
                    **_topology_kwargs(topology),
                    **tuning_kwargs,
                )
            )
    points = run_calls(simulate_yield_point, kwargs_list, engine, "yield.point")
    for index, topology in enumerate(names):
        result.curves[topology] = points[index * len(sizes) : (index + 1) * len(sizes)]
    return result


@dataclass
class TopologyMCMRow:
    """Assembly outcome for one topology's chiplet -> MCM pipeline."""

    topology: str
    chiplet_qubits: int
    mcm_qubits: int
    grid: tuple[int, int]
    num_links: int
    chiplet_yield: float
    num_mcms: int
    chiplets_used: int
    chiplets_set_aside: int
    post_assembly_yield: float
    average_error: float


@dataclass
class TopologyMCMResult:
    """Side-by-side MCM assembly comparison across topologies."""

    batch_size: int
    sigma_ghz: float
    rows: list[TopologyMCMRow] = field(default_factory=list)

    def format_table(self) -> str:
        """Render one row per topology."""
        header = [
            "topology",
            "chiplet",
            "grid",
            "links",
            "chiplet yield",
            "MCMs",
            "post-assembly yield",
            "E_avg",
        ]
        body = []
        for row in self.rows:
            eavg = "-" if np.isnan(row.average_error) else f"{row.average_error:.4f}"
            body.append(
                [
                    row.topology,
                    row.chiplet_qubits,
                    f"{row.grid[0]}x{row.grid[1]}",
                    row.num_links,
                    f"{row.chiplet_yield:.3f}",
                    row.num_mcms,
                    f"{row.post_assembly_yield:.4f}",
                    eavg,
                ]
            )
        return format_table(header, body)


def compute_topology_mcm_row(
    topology: str,
    chiplet_qubits: int,
    grid: tuple[int, int],
    batch_size: int,
    sigma_ghz: float,
    seed: int,
    cx_model=None,
) -> TopologyMCMRow:
    """The full chiplet -> bin -> MCM pipeline for one topology.

    A module-level function of picklable arguments so the comparison can
    fan out one task per topology through the engine.
    """
    arch = get_architecture(topology)
    design = ChipletDesign.build(chiplet_qubits, topology=arch.name)
    mcm_design = MCMDesign.build(design, *grid)
    if cx_model is None:
        cx_model = washington_cx_model(seed=11)
    rng = np.random.default_rng(seed)
    chiplet_bin = fabricate_chiplet_bin(
        design,
        FabricationModel(sigma_ghz=sigma_ghz),
        cx_model,
        batch_size=batch_size,
        rng=rng,
    )
    scenario = default_link_scenarios()[0]
    assembly = assemble_mcms(chiplet_bin, mcm_design, scenario.link_model, rng=rng)
    errors = [m.average_error for m in assembly.mcms]
    return TopologyMCMRow(
        topology=arch.name,
        chiplet_qubits=chiplet_qubits,
        mcm_qubits=mcm_design.num_qubits,
        grid=grid,
        num_links=mcm_design.num_links,
        chiplet_yield=chiplet_bin.collision_free_yield,
        num_mcms=assembly.num_mcms,
        chiplets_used=assembly.chiplets_used,
        chiplets_set_aside=assembly.chiplets_set_aside,
        post_assembly_yield=post_assembly_yield(assembly, batch_size),
        average_error=float(np.mean(errors)) if errors else float("nan"),
    )


def run_topology_mcm_comparison(
    topologies: tuple[str, ...] | None = None,
    chiplet_qubits: int = 18,
    grid: tuple[int, int] = (1, 2),
    batch_size: int = 1000,
    sigma_ghz: float = SIGMA_SCALING_TARGET_GHZ,
    seed: int = 7,
    engine=None,
) -> TopologyMCMResult:
    """Compare the chiplet -> MCM pipeline output across topologies.

    Defaults: 18-qubit chiplets (a multiple of three, so the ring
    chain's period-3 plan leaves a free link slot at its ends) in a
    ``1x2`` module at the paper's scaling-target precision.  One engine
    task per topology, each with a registry-position child seed (stable
    under topology filtering, see :func:`_seeds_by_topology`).
    """
    curve_seeds = _seeds_by_topology(seed)
    names = tuple(
        get_architecture(topology).name
        for topology in (topologies if topologies else ARCHITECTURES.names())
    )
    kwargs_list = [
        dict(
            topology=topology,
            chiplet_qubits=chiplet_qubits,
            grid=grid,
            batch_size=batch_size,
            sigma_ghz=sigma_ghz,
            seed=curve_seeds[topology],
        )
        for topology in names
    ]
    rows = run_calls(compute_topology_mcm_row, kwargs_list, engine, "topology.mcm")
    return TopologyMCMResult(batch_size=batch_size, sigma_ghz=sigma_ghz, rows=rows)
