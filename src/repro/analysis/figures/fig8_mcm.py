"""Fig. 8 — MCM vs. monolithic collision-free yield comparison."""

from __future__ import annotations

from dataclasses import dataclass, field
from math import inf

import numpy as np

from repro.analysis.reporting import format_table
from repro.analysis.study import ArchitectureStudy
from repro.core.mcm import mcm_dimensions_for

__all__ = ["Fig8Result", "run_fig8_yield_comparison"]


@dataclass
class Fig8Result:
    """Yield-vs-qubits series for monolithic and MCM architectures.

    ``monolithic_ci`` mirrors ``monolithic`` with per-size binomial
    confidence bounds ``(size, ci_low, ci_high)`` from the underlying
    Monte-Carlo :class:`~repro.core.yield_model.YieldResult`.
    """

    monolithic: list[tuple[int, float]] = field(default_factory=list)
    monolithic_ci: list[tuple[int, float, float]] = field(default_factory=list)
    chiplet_yields: dict[int, float] = field(default_factory=dict)
    mcm_series: dict[int, list[tuple[int, float, float]]] = field(default_factory=dict)
    yield_improvements: dict[int, float] = field(default_factory=dict)

    def format_table(self) -> str:
        """Render average yield-improvement factors per chiplet size."""
        header = ["chiplet size", "chiplet yield", "avg yield improvement (x)"]
        body = [
            [
                size,
                f"{self.chiplet_yields.get(size, float('nan')):.3f}",
                "inf" if self.yield_improvements[size] == inf else f"{self.yield_improvements[size]:.2f}",
            ]
            for size in sorted(self.yield_improvements)
        ]
        return format_table(header, body)


def run_fig8_yield_comparison(
    study: ArchitectureStudy,
    chiplet_sizes: tuple[int, ...] | None = None,
) -> Fig8Result:
    """Regenerate Fig. 8: yield vs. system size for every architecture.

    When the study carries an execution engine, every chiplet bin,
    monolithic Monte-Carlo run and MCM assembly the figure needs is
    prefetched through it in two parallel waves (bins first, then
    monoliths concurrently with assemblies), with results identical to
    the lazy sequential path.
    """
    config = study.config
    sizes = chiplet_sizes or config.chiplet_sizes

    monolithic_sizes: set[int] = set()
    grids: list[tuple[int, tuple[int, int]]] = []
    for chiplet_size in sizes:
        for grid in mcm_dimensions_for(chiplet_size, config.max_qubits):
            monolithic_sizes.add(chiplet_size * grid[0] * grid[1])
            grids.append((chiplet_size, grid))
    study.prefetch(
        chiplet_sizes=sizes,
        mcm_grids=grids,
        monolithic_sizes=sorted(monolithic_sizes),
    )

    result = Fig8Result()
    for size in sorted(monolithic_sizes):
        mono = study.monolithic_result(size)
        result.monolithic.append((size, mono.collision_free_yield))
        if mono.yield_result is not None:
            result.monolithic_ci.append(
                (size, mono.yield_result.ci_low, mono.yield_result.ci_high)
            )

    for chiplet_size in sizes:
        chiplet_bin = study.chiplet_bin(chiplet_size)
        result.chiplet_yields[chiplet_size] = chiplet_bin.collision_free_yield
        series = []
        mcm_yields = []
        mono_yields = []
        for grid in mcm_dimensions_for(chiplet_size, config.max_qubits):
            mcm = study.mcm_result(chiplet_size, grid)
            num_qubits = mcm.design.num_qubits
            series.append(
                (num_qubits, mcm.post_assembly_yield, mcm.post_assembly_yield_100x)
            )
            mcm_yields.append(mcm.post_assembly_yield)
            mono_yields.append(study.monolithic_result(num_qubits).collision_free_yield)
        series.sort()
        result.mcm_series[chiplet_size] = series
        # "Average yield improvement" of the chiplet group: the mean MCM
        # yield over its configurations relative to the mean monolithic
        # yield over the same system sizes (infinite when every monolithic
        # counterpart has zero yield, as for the paper's 200-qubit chiplet).
        mean_mono = float(np.mean(mono_yields)) if mono_yields else 0.0
        mean_mcm = float(np.mean(mcm_yields)) if mcm_yields else 0.0
        result.yield_improvements[chiplet_size] = (
            mean_mcm / mean_mono if mean_mono > 0 else inf
        )
    return result
