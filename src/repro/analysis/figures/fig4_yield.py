"""Fig. 4 — collision-free yield vs. qubits (the flagship parallel sweep).

The grid is ``len(steps) * len(sigmas) * len(sizes)`` independent
Monte-Carlo points; passing an :class:`repro.engine.ExecutionEngine` fans
them out over worker processes with bit-identical results to the
sequential run at the same seed.  Every point carries a binomial
confidence interval, and a :class:`repro.stats.StatsOptions` switches the
whole grid to chunked streaming / adaptive sampling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.reporting import format_table
from repro.core.fabrication import (
    SIGMA_AS_FABRICATED_GHZ,
    SIGMA_LASER_TUNED_GHZ,
    SIGMA_SCALING_TARGET_GHZ,
)
from repro.core.yield_model import YieldResult, detuning_sweep
from repro.stats import StatsOptions
from repro.tuning import TuningOptions

__all__ = ["Fig4Result", "run_fig4_yield_sweep"]


@dataclass
class Fig4Result:
    """Yield curves for every (detuning step, sigma_f) combination.

    ``curves`` keeps the plain yield fractions (the original, lightweight
    view); ``results`` holds the full per-point :class:`YieldResult`
    objects — estimate, CI bounds and samples used — in the same order.
    """

    sizes: tuple[int, ...]
    curves: dict[tuple[float, float], list[float]] = field(default_factory=dict)
    results: dict[tuple[float, float], list[YieldResult]] = field(default_factory=dict)

    def best_step(self, sigma_ghz: float) -> float:
        """Detuning step with the highest total yield for a given precision."""
        totals: dict[float, float] = {}
        for (step, sigma), yields in self.curves.items():
            if abs(sigma - sigma_ghz) < 1e-12:
                totals[step] = totals.get(step, 0.0) + sum(yields)
        return max(totals, key=totals.get)

    def format_table(self) -> str:
        """Render the yield grid (one row per curve)."""
        header = ["step", "sigma"] + [str(s) for s in self.sizes]
        body = []
        for (step, sigma), yields in sorted(self.curves.items()):
            body.append([f"{step:.2f}", f"{sigma:.4f}"] + [f"{y:.3f}" for y in yields])
        return format_table(header, body)

    def format_ci_table(self) -> str:
        """Render the grid with confidence intervals (``est [low,high]``)."""
        header = ["step", "sigma"] + [str(s) for s in self.sizes]
        body = []
        for (step, sigma), points in sorted(self.results.items()):
            cells = [
                f"{p.estimate:.3f} [{p.ci_low:.3f},{p.ci_high:.3f}]" for p in points
            ]
            body.append([f"{step:.2f}", f"{sigma:.4f}"] + cells)
        return format_table(header, body)

    def samples_used(self) -> int:
        """Total Monte-Carlo samples drawn across the grid."""
        return sum(p.samples_used for points in self.results.values() for p in points)


def run_fig4_yield_sweep(
    steps_ghz: tuple[float, ...] = (0.04, 0.05, 0.06, 0.07),
    sigmas_ghz: tuple[float, ...] = (
        SIGMA_AS_FABRICATED_GHZ,
        SIGMA_LASER_TUNED_GHZ,
        SIGMA_SCALING_TARGET_GHZ,
    ),
    sizes: tuple[int, ...] = (5, 10, 20, 40, 65, 100, 200, 300, 500, 750, 1000),
    batch_size: int = 1000,
    seed: int = 7,
    engine=None,
    stats: StatsOptions | None = None,
    topology: str | None = None,
    tuning: TuningOptions | None = None,
    share_draws: bool = False,
) -> Fig4Result:
    """Regenerate the Fig. 4 grid of yield-vs-qubits curves.

    Parameters
    ----------
    engine:
        Optional :class:`repro.engine.ExecutionEngine`; the sweep's points
        are submitted through it (parallelism + result caching) and the
        output stays bit-identical to the in-process run.
    stats:
        Optional statistics options (chunked streaming / adaptive
        sampling with CI targets).
    topology:
        Registered topology name; the heavy-hex default reproduces the
        paper's grid, ``"square"``/``"ring"`` regenerate it for the
        denser/sparser scenarios.
    tuning:
        Optional post-fabrication repair options; the grid's yields then
        include tuner-recovered dies.
    share_draws:
        Declare (step, sigma) as the shared-draw axis: every curve
        fabricates the same virtual devices per size (common random
        numbers), and the sample bank reduces the grid to one sampling
        pass per size.  Defaults to the historical per-curve resampling
        that the committed goldens pin.
    """
    curves = detuning_sweep(
        steps_ghz=steps_ghz,
        sigmas_ghz=sigmas_ghz,
        sizes=sizes,
        batch_size=batch_size,
        seed=seed,
        executor=engine,
        stats=stats,
        topology=topology,
        tuning=tuning,
        share_draws=share_draws,
    )
    result = Fig4Result(sizes=sizes)
    for key, curve in curves.items():
        result.curves[key] = curve.yields
        result.results[key] = list(curve.points)
    return result
