"""Fig. 4 — collision-free yield vs. qubits (the flagship parallel sweep).

The grid is ``len(steps) * len(sigmas) * len(sizes)`` independent
Monte-Carlo points; passing an :class:`repro.engine.ExecutionEngine` fans
them out over worker processes with bit-identical results to the
sequential run at the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.reporting import format_table
from repro.core.fabrication import (
    SIGMA_AS_FABRICATED_GHZ,
    SIGMA_LASER_TUNED_GHZ,
    SIGMA_SCALING_TARGET_GHZ,
)
from repro.core.yield_model import detuning_sweep

__all__ = ["Fig4Result", "run_fig4_yield_sweep"]


@dataclass
class Fig4Result:
    """Yield curves for every (detuning step, sigma_f) combination."""

    sizes: tuple[int, ...]
    curves: dict[tuple[float, float], list[float]] = field(default_factory=dict)

    def best_step(self, sigma_ghz: float) -> float:
        """Detuning step with the highest total yield for a given precision."""
        totals: dict[float, float] = {}
        for (step, sigma), yields in self.curves.items():
            if abs(sigma - sigma_ghz) < 1e-12:
                totals[step] = totals.get(step, 0.0) + sum(yields)
        return max(totals, key=totals.get)

    def format_table(self) -> str:
        """Render the yield grid (one row per curve)."""
        header = ["step", "sigma"] + [str(s) for s in self.sizes]
        body = []
        for (step, sigma), yields in sorted(self.curves.items()):
            body.append([f"{step:.2f}", f"{sigma:.4f}"] + [f"{y:.3f}" for y in yields])
        return format_table(header, body)


def run_fig4_yield_sweep(
    steps_ghz: tuple[float, ...] = (0.04, 0.05, 0.06, 0.07),
    sigmas_ghz: tuple[float, ...] = (
        SIGMA_AS_FABRICATED_GHZ,
        SIGMA_LASER_TUNED_GHZ,
        SIGMA_SCALING_TARGET_GHZ,
    ),
    sizes: tuple[int, ...] = (5, 10, 20, 40, 65, 100, 200, 300, 500, 750, 1000),
    batch_size: int = 1000,
    seed: int = 7,
    engine=None,
) -> Fig4Result:
    """Regenerate the Fig. 4 grid of yield-vs-qubits curves.

    Parameters
    ----------
    engine:
        Optional :class:`repro.engine.ExecutionEngine`; the sweep's points
        are submitted through it (parallelism + result caching) and the
        output stays bit-identical to the in-process run.
    """
    curves = detuning_sweep(
        steps_ghz=steps_ghz,
        sigmas_ghz=sigmas_ghz,
        sizes=sizes,
        batch_size=batch_size,
        seed=seed,
        executor=engine,
    )
    result = Fig4Result(sizes=sizes)
    for key, curve in curves.items():
        result.curves[key] = curve.yields
    return result
