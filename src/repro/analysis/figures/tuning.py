"""Post-fabrication repair experiments (beyond the paper's figures).

Two registry experiments put the :mod:`repro.tuning` subsystem to work:

``tunedyield``
    The yield-vs-size sweep run once per registered topology with the
    repair stage enabled.  Every Monte-Carlo point returns a
    :class:`repro.core.yield_model.RepairedYieldResult`, so a single
    task per (topology, size) yields *both* curves — the as-fabricated
    yield and the post-repair yield — from literally the same fabricated
    devices.  The gap between the curves is the yield the tuner
    recovered: dies the paper's pipeline would have scrapped.

``repairbudget``
    Repaired yield as a function of the tuner's reach (max shift) and
    per-qubit tune budget, at a fixed device size.  Every grid cell
    reuses the *same master seed*, so all rows screen the identical
    fabricated batch and differences are purely what the tuner could do
    with it — the as-fab column is constant by construction.

Both experiments submit one engine task per point with positional child
seeds (registry-position stable for topologies, grid-position irrelevant
for the budget sweep since every cell shares the seed), so parallel runs
are bit-identical to sequential ones and every tuned point's cache key
embeds its :class:`~repro.tuning.TuningOptions`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.analysis.figures.topologies import _seeds_by_topology
from repro.analysis.reporting import format_table
from repro.core.architecture import ARCHITECTURES, get_architecture
from repro.core.fabrication import SIGMA_LASER_TUNED_GHZ
from repro.core.yield_model import (
    RepairedYieldResult,
    _stats_point_kwargs,
    _topology_kwargs,
    simulate_yield_point,
)
from repro.engine.dispatch import run_calls
from repro.engine.seeding import spawn_seeds
from repro.stats import StatsOptions
from repro.tuning import TuningOptions

__all__ = [
    "TunedYieldResult",
    "RepairBudgetRow",
    "RepairBudgetResult",
    "run_tuned_yield_comparison",
    "run_repair_budget_sweep",
    "DEFAULT_TUNED_SIZES",
    "DEFAULT_SHIFT_GRID_MHZ",
    "DEFAULT_BUDGET_GRID",
]

#: Device sizes probed by the tuned-vs-as-fab yield comparison.
DEFAULT_TUNED_SIZES = (10, 20, 40, 65, 100, 200)

#: Tuner reach grid (MHz) of the repair-budget sweep; 0 is the no-repair
#: baseline row.
DEFAULT_SHIFT_GRID_MHZ = (0.0, 10.0, 50.0, 100.0, 300.0)

#: Per-qubit tune budgets of the repair-budget sweep (``None`` = unlimited).
DEFAULT_BUDGET_GRID = (1, None)


@dataclass
class TunedYieldResult:
    """As-fab vs. repaired yield curves per topology.

    Attributes
    ----------
    sizes:
        Device sizes along every curve.
    sigma_ghz, step_ghz:
        Shared fabrication precision and detuning step.
    tuning:
        The repair configuration every point ran with.
    curves:
        Topology name -> per-size :class:`RepairedYieldResult` points.
    """

    sizes: tuple[int, ...]
    sigma_ghz: float
    step_ghz: float
    tuning: TuningOptions
    curves: dict[str, list[RepairedYieldResult]] = field(default_factory=dict)

    def as_fab_yields(self, topology: str) -> list[float]:
        """Yield fractions before repair along one topology's curve."""
        return [p.as_fab_yield for p in self.curves[topology]]

    def repaired_yields(self, topology: str) -> list[float]:
        """Yield fractions after repair along one topology's curve."""
        return [p.repaired_yield for p in self.curves[topology]]

    def yield_gain(self, topology: str) -> float:
        """Largest absolute yield recovered by repair along the curve."""
        return max(
            p.repaired_yield - p.as_fab_yield for p in self.curves[topology]
        )

    def format_table(self) -> str:
        """Two rows per topology: the as-fab curve and the repaired curve."""
        header = ["topology", "pipeline"] + [str(s) for s in self.sizes]
        body = []
        for topology in self.curves:
            body.append(
                [topology, "as-fab"]
                + [f"{y:.3f}" for y in self.as_fab_yields(topology)]
            )
            body.append(
                [topology, "repaired"]
                + [f"{y:.3f}" for y in self.repaired_yields(topology)]
            )
        return format_table(header, body)


def run_tuned_yield_comparison(
    topologies: tuple[str, ...] | None = None,
    sizes: tuple[int, ...] = DEFAULT_TUNED_SIZES,
    sigma_ghz: float = SIGMA_LASER_TUNED_GHZ,
    step_ghz: float = 0.06,
    batch_size: int = 400,
    seed: int = 7,
    engine=None,
    stats: StatsOptions | None = None,
    tuning: TuningOptions | None = None,
) -> TunedYieldResult:
    """As-fab vs. repaired collision-free yield for every topology.

    One engine task per (topology, size) point; seeding follows the
    registry-position contract of
    :func:`repro.analysis.figures.topologies._seeds_by_topology`, so a
    filtered run (``--topology square``) reproduces exactly the rows of
    the full comparison.  ``tuning`` defaults to the default greedy
    tuner (:class:`~repro.tuning.TuningOptions`).
    """
    tuning = tuning if tuning is not None else TuningOptions()
    curve_seeds = _seeds_by_topology(seed)
    names = tuple(
        get_architecture(topology).name
        for topology in (topologies if topologies else ARCHITECTURES.names())
    )
    result = TunedYieldResult(
        sizes=sizes, sigma_ghz=sigma_ghz, step_ghz=step_ghz, tuning=tuning
    )
    stats_kwargs = _stats_point_kwargs(stats)

    kwargs_list = []
    for topology in names:
        arch = get_architecture(topology)
        lattices = {size: arch.lattice(size) for size in sizes}
        point_seeds = spawn_seeds(curve_seeds[topology], len(sizes))
        for size, child_seed in zip(sizes, point_seeds):
            kwargs_list.append(
                dict(
                    sigma_ghz=sigma_ghz,
                    step_ghz=step_ghz,
                    num_qubits=size,
                    batch_size=batch_size,
                    seed=child_seed,
                    thresholds=None,
                    lattice=lattices[size],
                    tuning=tuning,
                    **stats_kwargs,
                    **_topology_kwargs(topology),
                )
            )
    points = run_calls(simulate_yield_point, kwargs_list, engine, "yield.tuned")
    for index, topology in enumerate(names):
        result.curves[topology] = points[index * len(sizes) : (index + 1) * len(sizes)]
    return result


@dataclass
class RepairBudgetRow:
    """One (max shift, budget) cell of the repair-budget sweep."""

    max_shift_mhz: float
    budget: int | None
    as_fab_yield: float
    repaired_yield: float
    num_repaired: int
    tuned_qubits: int
    total_tunes: int


@dataclass
class RepairBudgetResult:
    """Yield vs. tuner reach and per-qubit budget at one device size."""

    topology: str
    num_qubits: int
    sigma_ghz: float
    batch_size: int
    strategy: str
    rows: list[RepairBudgetRow] = field(default_factory=list)

    def format_table(self) -> str:
        """Render one row per (max shift, budget) cell."""
        header = [
            "max shift (MHz)",
            "budget",
            "as-fab yield",
            "repaired yield",
            "repaired dies",
            "tuned qubits",
        ]
        body = []
        for row in self.rows:
            body.append(
                [
                    f"{row.max_shift_mhz:g}",
                    "inf" if row.budget is None else str(row.budget),
                    f"{row.as_fab_yield:.3f}",
                    f"{row.repaired_yield:.3f}",
                    row.num_repaired,
                    row.tuned_qubits,
                ]
            )
        return format_table(header, body)


def run_repair_budget_sweep(
    topology: str | None = None,
    num_qubits: int = 65,
    sigma_ghz: float = SIGMA_LASER_TUNED_GHZ,
    step_ghz: float = 0.06,
    shifts_mhz: tuple[float, ...] = DEFAULT_SHIFT_GRID_MHZ,
    budgets: tuple[int | None, ...] = DEFAULT_BUDGET_GRID,
    batch_size: int = 400,
    seed: int = 7,
    engine=None,
    tuning: TuningOptions | None = None,
) -> RepairBudgetResult:
    """Repaired yield vs. tuner reach and per-qubit tune budget.

    Every cell runs :func:`simulate_yield_point` at the *same* seed, so
    the fabricated batch is identical across the grid and the repaired
    column isolates the tuner's contribution.  That same-seed design is
    also the sweep's shared-draw axis: with the sample bank enabled
    (:mod:`repro.core.sample_bank`) the whole reach x budget grid
    fabricates ONCE and every other cell re-scales banked draws, while
    the per-cell repair streams still continue their own generators
    bit-identically.  ``tuning`` contributes the strategy and actuation
    precision; the grid overrides reach and budget cell by cell.  The
    zero-shift row is the exact untuned baseline (a no-op tuner repairs
    nothing by contract).
    """
    base = tuning if tuning is not None else TuningOptions()
    arch = get_architecture(topology)
    lattice = arch.lattice(num_qubits)
    cells = [(shift, budget) for shift in shifts_mhz for budget in budgets]
    kwargs_list = [
        dict(
            sigma_ghz=sigma_ghz,
            step_ghz=step_ghz,
            num_qubits=num_qubits,
            batch_size=batch_size,
            seed=seed,
            thresholds=None,
            lattice=lattice,
            tuning=TuningOptions(
                tuner=dataclasses.replace(
                    base.tuner,
                    max_shift_ghz=shift / 1000.0,
                    max_tunes_per_qubit=budget,
                ),
                strategy=base.strategy,
            ),
            **_topology_kwargs(arch.name),
        )
        for shift, budget in cells
    ]
    points = run_calls(simulate_yield_point, kwargs_list, engine, "yield.budget")
    result = RepairBudgetResult(
        topology=arch.name,
        num_qubits=num_qubits,
        sigma_ghz=sigma_ghz,
        batch_size=batch_size,
        strategy=base.strategy.name,
    )
    for (shift, budget), point in zip(cells, points):
        result.rows.append(
            RepairBudgetRow(
                max_shift_mhz=shift,
                budget=budget,
                as_fab_yield=point.as_fab_yield,
                repaired_yield=point.repaired_yield,
                num_repaired=point.num_repaired,
                tuned_qubits=point.tuned_qubits,
                total_tunes=point.total_tunes,
            )
        )
    return result
