"""Fig. 10 — application-level fidelity ratios, MCM vs. monolithic.

The per-(system, benchmark) compile+score work is decomposed into
engine task units (:mod:`repro.analysis.appeval`): one flat batch
covering every MCM and monolithic compilation is submitted through
``run_calls``, so ``--jobs N`` parallelises the sweep bit-identically
to the seed-state serial loop (every task carries the same historical
circuit seed) and re-runs are content-addressed cache hits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import inf

import numpy as np

from repro.analysis.appeval import run_compile_jobs, score_from_row
from repro.analysis.reporting import format_table
from repro.analysis.study import ArchitectureStudy
from repro.circuits.benchmarks import BENCHMARK_NAMES
from repro.core.mcm import mcm_dimensions_for, square_dimensions_for
from repro.simulation.esp import FidelityScore, fidelity_ratio

__all__ = ["Fig10Result", "run_fig10_applications"]


@dataclass
class Fig10Result:
    """Per-system, per-benchmark fidelity comparison."""

    utilisation: float
    rows: list[dict] = field(default_factory=list)

    def ratios_for_benchmark(self, benchmark: str) -> list[tuple[int, float]]:
        """(system size, MCM/monolithic fidelity ratio) for one benchmark."""
        return [
            (r["num_qubits"], r["ratio"]) for r in self.rows if r["benchmark"] == benchmark
        ]

    def mcm_advantage_fraction(self, benchmark: str, chiplet_sizes: tuple[int, ...]) -> float:
        """Fraction of systems (of given chiplet sizes) where the MCM wins."""
        values = [
            r["ratio"] >= 1.0
            for r in self.rows
            if r["benchmark"] == benchmark and r["chiplet_size"] in chiplet_sizes
        ]
        return float(np.mean(values)) if values else float("nan")

    def format_table(self) -> str:
        """Render every comparison row."""
        header = [
            "chiplet", "grid", "qubits", "benchmark",
            "log10F_mcm", "log10F_mono", "ratio",
        ]
        body = []
        for r in self.rows:
            ratio = r["ratio"]
            body.append(
                [
                    r["chiplet_size"],
                    f"{r['grid'][0]}x{r['grid'][1]}",
                    r["num_qubits"],
                    r["benchmark"],
                    f"{r['mcm_log10_fidelity']:.2f}",
                    "0-yield" if r["mono_log10_fidelity"] is None else f"{r['mono_log10_fidelity']:.2f}",
                    "inf" if ratio == inf else f"{ratio:.3g}",
                ]
            )
        return format_table(header, body)


def run_fig10_applications(
    study: ArchitectureStudy,
    chiplet_sizes: tuple[int, ...] | None = None,
    square_only: bool = True,
    benchmarks: tuple[str, ...] = BENCHMARK_NAMES,
    utilisation: float = 0.8,
    seed: int = 5,
    engine=None,
    routing: str = "basic",
) -> Fig10Result:
    """Regenerate Fig. 10: benchmark fidelity products, MCM vs. monolithic.

    Parameters
    ----------
    study:
        Shared architecture study (provides devices for both architectures).
    chiplet_sizes:
        Chiplet sizes to include; defaults to every size with a square MCM
        when ``square_only`` is set, otherwise every paper size.
    square_only:
        Restrict to the ``n x n`` systems of Fig. 10(b) (also the Fig. 9
        subset); the full 102-configuration sweep of Fig. 10(a) is obtained
        with ``square_only=False``.
    benchmarks:
        Benchmark names to compile.
    utilisation:
        Fraction of device qubits targeted by each benchmark (paper: 80 %).
    seed:
        Seed for the randomised benchmark circuits (BV strings, QAOA
        graphs); the device side is seeded by the study's config.
    engine:
        Optional :class:`repro.engine.ExecutionEngine`; when present the
        compile+score tasks fan out over worker processes (bit-identical
        to the in-process loop, cached content-addressed).
    routing:
        Registered routing strategy compiled with (``"basic"``
        reproduces the paper's router; ``"noise-aware"`` detours SWAP
        traffic around high-error couplings).
    """
    config = study.config
    result = Fig10Result(utilisation=utilisation)
    if chiplet_sizes is None:
        chiplet_sizes = tuple(
            s
            for s in config.chiplet_sizes
            if not square_only or square_dimensions_for(s, config.max_qubits)
        )

    grid_plan: list[tuple[int, tuple[int, int]]] = []
    for chiplet_size in chiplet_sizes:
        dims = (
            square_dimensions_for(chiplet_size, config.max_qubits)
            if square_only
            else mcm_dimensions_for(chiplet_size, config.max_qubits)
        )
        for grid in dims:
            grid_plan.append((chiplet_size, grid))
    # Two-stage prefetch: assemble first, then run the (expensive)
    # monolithic Monte-Carlo only for systems that actually produced a
    # best device — configurations with an empty bin are skipped below,
    # and the lazy path never computed their monolithic counterparts.
    study.prefetch(chiplet_sizes=chiplet_sizes, mcm_grids=grid_plan)
    study.prefetch(
        monolithic_sizes=sorted(
            {
                size * grid[0] * grid[1]
                for size, grid in grid_plan
                if study.mcm_result(size, grid).best_device is not None
            }
        )
    )

    # One flat batch of compile+score tasks: the MCM job (and, when the
    # monolithic population survived, the monolithic job) for every
    # (system, benchmark) pair.  Every task carries the same historical
    # circuit seed, so the engine-parallel sweep is bit-identical to the
    # seed-state serial loop.
    plan: list[dict] = []
    kwargs_list: list[dict] = []
    for chiplet_size, grid in grid_plan:
        mcm = study.mcm_result(chiplet_size, grid)
        if mcm.best_device is None:
            continue
        mono = study.monolithic_result(mcm.design.num_qubits)
        width = max(2, int(round(utilisation * mcm.design.num_qubits)))
        for benchmark in benchmarks:
            entry = {
                "chiplet_size": chiplet_size,
                "grid": grid,
                "num_qubits": mcm.design.num_qubits,
                "benchmark": benchmark,
                "mcm_index": len(kwargs_list),
                "mono_index": None,
            }
            kwargs_list.append(
                dict(
                    benchmark=benchmark,
                    width=width,
                    circuit_seed=seed,
                    device=mcm.best_device,
                    routing=routing,
                )
            )
            if mono.representative_device is not None:
                entry["mono_index"] = len(kwargs_list)
                kwargs_list.append(
                    dict(
                        benchmark=benchmark,
                        width=width,
                        circuit_seed=seed,
                        device=mono.representative_device,
                        routing=routing,
                    )
                )
            plan.append(entry)

    scores = run_compile_jobs(kwargs_list, engine)

    for entry in plan:
        mcm_score = score_from_row(scores[entry["mcm_index"]])
        mono_score: FidelityScore | None = None
        if entry["mono_index"] is not None:
            mono_score = score_from_row(scores[entry["mono_index"]])
        result.rows.append(
            {
                "chiplet_size": entry["chiplet_size"],
                "grid": entry["grid"],
                "num_qubits": entry["num_qubits"],
                "benchmark": entry["benchmark"],
                "mcm_log10_fidelity": mcm_score.log10_fidelity,
                "mono_log10_fidelity": (
                    mono_score.log10_fidelity if mono_score is not None else None
                ),
                "mcm_two_qubit_gates": mcm_score.num_two_qubit_gates,
                "mono_two_qubit_gates": (
                    mono_score.num_two_qubit_gates if mono_score is not None else None
                ),
                "ratio": fidelity_ratio(mcm_score, mono_score),
            }
        )
    return result
