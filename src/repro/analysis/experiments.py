"""Compatibility shim over the per-experiment modules.

The former 672-line monolith now lives in :mod:`repro.analysis.figures`,
one module per figure/table, executed through the parallel experiment
engine (:mod:`repro.engine`).  This module re-exports every historical
name so existing imports — tests, benchmarks, examples, downstream
notebooks — keep working unchanged.

Prefer importing from the specific module (or running experiments via
``python -m repro run <name>``) in new code:

==============================  =========================================
``repro.analysis.figures``      drivers & result types (see its docstring)
``repro.analysis.registry``     name -> experiment registry for the CLI
``repro.engine``                Task/TaskGraph, parallel runner, cache
==============================  =========================================
"""

from __future__ import annotations

# The old monolith's module-level imports, kept importable from here for
# backwards compatibility (they were reachable as
# ``repro.analysis.experiments.<name>`` before the split).
from repro.analysis.reporting import format_table  # noqa: F401
from repro.analysis.study import ArchitectureStudy, StudyConfig  # noqa: F401
from repro.circuits.benchmarks import BENCHMARK_NAMES, build_benchmark  # noqa: F401
from repro.compiler.transpile import transpile  # noqa: F401
from repro.core.chiplet import ChipletDesign  # noqa: F401
from repro.core.collisions import CollisionThresholds, find_collisions  # noqa: F401
from repro.core.configurations import configuration_curve  # noqa: F401
from repro.core.fabrication import (  # noqa: F401
    FabricationModel,
    SIGMA_AS_FABRICATED_GHZ,
    SIGMA_LASER_TUNED_GHZ,
    SIGMA_SCALING_TARGET_GHZ,
)
from repro.core.frequencies import FrequencySpec, allocation_from_labels  # noqa: F401
from repro.core.mcm import mcm_dimensions_for, square_dimensions_for  # noqa: F401
from repro.core.output_model import compare_fabrication_output  # noqa: F401
from repro.core.yield_model import detuning_sweep, yield_vs_qubits  # noqa: F401
from repro.device.calibration import (  # noqa: F401
    SyntheticCalibrationGenerator,
    washington_cx_model,
)
from repro.device.noise import EmpiricalCXModel  # noqa: F401
from repro.simulation.esp import (  # noqa: F401
    FidelityScore,
    fidelity_product,
    fidelity_ratio,
)

from repro.analysis.figures.fig3_trends import Fig3Result, run_fig3_processor_trends
from repro.analysis.figures.fig4_yield import Fig4Result, run_fig4_yield_sweep
from repro.analysis.figures.fig6_configurations import run_fig6_configurations
from repro.analysis.figures.fig7_detuning import Fig7Result, run_fig7_detuning_model
from repro.analysis.figures.fig8_mcm import Fig8Result, run_fig8_yield_comparison
from repro.analysis.figures.fig9_heatmaps import Fig9Result, run_fig9_infidelity_heatmap
from repro.analysis.figures.fig10_apps import Fig10Result, run_fig10_applications
from repro.analysis.figures.sec5c_output import run_sec5c_fabrication_output
from repro.analysis.figures.tables import (
    Table1Result,
    Table2Result,
    run_table1_collision_criteria,
    run_table2_compiled_benchmarks,
)

__all__ = [
    "run_fig3_processor_trends",
    "run_table1_collision_criteria",
    "run_fig4_yield_sweep",
    "run_fig6_configurations",
    "run_sec5c_fabrication_output",
    "run_fig7_detuning_model",
    "run_fig8_yield_comparison",
    "run_fig9_infidelity_heatmap",
    "run_fig10_applications",
    "run_table2_compiled_benchmarks",
    "Fig3Result",
    "Table1Result",
    "Fig4Result",
    "Fig7Result",
    "Fig8Result",
    "Fig9Result",
    "Fig10Result",
    "Table2Result",
]
