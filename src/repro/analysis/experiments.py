"""Experiment drivers that regenerate every table and figure of the paper.

Each ``run_*`` function returns a small result object holding the rows or
series the corresponding figure/table plots, plus a ``format_table`` helper
so benchmarks and examples can print them.  The experiment <-> module map is
documented in DESIGN.md; paper-vs-measured numbers live in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import inf

import numpy as np

from repro.analysis.reporting import format_table
from repro.analysis.study import ArchitectureStudy, StudyConfig
from repro.circuits.benchmarks import BENCHMARK_NAMES, build_benchmark
from repro.compiler.transpile import transpile
from repro.core.chiplet import ChipletDesign
from repro.core.collisions import CollisionThresholds, find_collisions
from repro.core.configurations import configuration_curve
from repro.core.fabrication import (
    FabricationModel,
    SIGMA_AS_FABRICATED_GHZ,
    SIGMA_LASER_TUNED_GHZ,
    SIGMA_SCALING_TARGET_GHZ,
)
from repro.core.frequencies import FrequencySpec, allocation_from_labels
from repro.core.mcm import mcm_dimensions_for, square_dimensions_for
from repro.core.output_model import compare_fabrication_output
from repro.core.yield_model import detuning_sweep, yield_vs_qubits
from repro.device.calibration import SyntheticCalibrationGenerator, washington_cx_model
from repro.device.noise import EmpiricalCXModel
from repro.simulation.esp import FidelityScore, fidelity_product, fidelity_ratio

__all__ = [
    "run_fig3_processor_trends",
    "run_table1_collision_criteria",
    "run_fig4_yield_sweep",
    "run_fig6_configurations",
    "run_sec5c_fabrication_output",
    "run_fig7_detuning_model",
    "run_fig8_yield_comparison",
    "run_fig9_infidelity_heatmap",
    "run_fig10_applications",
    "run_table2_compiled_benchmarks",
    "Fig3Result",
    "Table1Result",
    "Fig4Result",
    "Fig8Result",
    "Fig9Result",
    "Fig10Result",
    "Table2Result",
]


# ---------------------------------------------------------------------- #
# Fig. 3 — processor-size vs. CX infidelity trends
# ---------------------------------------------------------------------- #
@dataclass
class Fig3Result:
    """CX-infidelity statistics per processor (Fig. 3b)."""

    rows: list[dict] = field(default_factory=list)

    def format_table(self) -> str:
        """Render the per-processor statistics as a text table."""
        header = ["device", "qubits", "median", "mean", "q25", "q75", "iqr"]
        body = [
            [
                r["device"],
                r["qubits"],
                f"{r['median']:.4f}",
                f"{r['mean']:.4f}",
                f"{r['q25']:.4f}",
                f"{r['q75']:.4f}",
                f"{r['iqr']:.4f}",
            ]
            for r in self.rows
        ]
        return format_table(header, body)


def run_fig3_processor_trends(
    num_cycles: int = 15, seed: int = 11
) -> Fig3Result:
    """Regenerate Fig. 3(b): CX infidelity distributions vs. processor size."""
    generator = SyntheticCalibrationGenerator()
    suite = generator.generate_processor_suite(num_cycles=num_cycles, seed=seed)
    result = Fig3Result()
    for name, dataset in suite.items():
        values = dataset.all_infidelities()
        q25, q75 = np.percentile(values, [25, 75])
        result.rows.append(
            {
                "device": name,
                "qubits": dataset.num_qubits,
                "median": dataset.median_infidelity(),
                "mean": dataset.mean_infidelity(),
                "q25": float(q25),
                "q75": float(q75),
                "iqr": dataset.infidelity_iqr(),
            }
        )
    result.rows.sort(key=lambda r: r["qubits"])
    return result


# ---------------------------------------------------------------------- #
# Table I — collision criteria demonstration
# ---------------------------------------------------------------------- #
@dataclass
class Table1Result:
    """One demonstration row per collision type."""

    rows: list[dict] = field(default_factory=list)

    def format_table(self) -> str:
        """Render the per-criterion demonstrations."""
        header = ["type", "description", "frequencies (GHz)", "detected"]
        body = [
            [r["type"], r["description"], r["frequencies"], "yes" if r["detected"] else "NO"]
            for r in self.rows
        ]
        return format_table(header, body)


def run_table1_collision_criteria() -> Table1Result:
    """Check each Table I criterion on a minimal hand-crafted device.

    A three-qubit device (control ``Q1`` coupled to targets ``Q0`` and
    ``Q2``) is given frequency assignments that violate exactly one
    criterion at a time; the collision detector must flag each of them.
    """
    spec = FrequencySpec()
    alpha = spec.anharmonicity_ghz
    labels = np.array([0, 2, 1])
    edges = [(1, 0), (1, 2)]
    allocation = allocation_from_labels(labels, edges, spec=spec)
    f0, f1, f2 = spec.frequencies

    cases = [
        (1, "f_i = f_j (near-null neighbours)", np.array([f2 + 0.001, f2, f1])),
        (2, "f_i + a/2 = f_j", np.array([f2 + alpha / 2.0, f2, f1])),
        (3, "f_i = f_j + a", np.array([f2 + alpha + 0.001, f2, f1])),
        (4, "target outside straddling regime", np.array([f2 + 0.05, f2, f1])),
        (5, "f_j = f_k (shared control)", np.array([f0, f2, f0 + 0.001])),
        (6, "f_j = f_k + a (shared control)", np.array([f0, f2, f0 - alpha - 0.001])),
        (7, "2 f_i + a = f_j + f_k", np.array([2 * f2 + alpha - f1 + 0.001, f2, f1])),
    ]
    result = Table1Result()
    for ctype, description, frequencies in cases:
        report = find_collisions(allocation, frequencies)
        detected = ctype in {t for t, _ in report.collisions}
        result.rows.append(
            {
                "type": ctype,
                "description": description,
                "frequencies": "/".join(f"{f:.3f}" for f in frequencies),
                "detected": detected,
            }
        )
    return result


# ---------------------------------------------------------------------- #
# Fig. 4 — collision-free yield vs. qubits
# ---------------------------------------------------------------------- #
@dataclass
class Fig4Result:
    """Yield curves for every (detuning step, sigma_f) combination."""

    sizes: tuple[int, ...]
    curves: dict[tuple[float, float], list[float]] = field(default_factory=dict)

    def best_step(self, sigma_ghz: float) -> float:
        """Detuning step with the highest total yield for a given precision."""
        totals: dict[float, float] = {}
        for (step, sigma), yields in self.curves.items():
            if abs(sigma - sigma_ghz) < 1e-12:
                totals[step] = totals.get(step, 0.0) + sum(yields)
        return max(totals, key=totals.get)

    def format_table(self) -> str:
        """Render the yield grid (one row per curve)."""
        header = ["step", "sigma"] + [str(s) for s in self.sizes]
        body = []
        for (step, sigma), yields in sorted(self.curves.items()):
            body.append([f"{step:.2f}", f"{sigma:.4f}"] + [f"{y:.3f}" for y in yields])
        return format_table(header, body)


def run_fig4_yield_sweep(
    steps_ghz: tuple[float, ...] = (0.04, 0.05, 0.06, 0.07),
    sigmas_ghz: tuple[float, ...] = (
        SIGMA_AS_FABRICATED_GHZ,
        SIGMA_LASER_TUNED_GHZ,
        SIGMA_SCALING_TARGET_GHZ,
    ),
    sizes: tuple[int, ...] = (5, 10, 20, 40, 65, 100, 200, 300, 500, 750, 1000),
    batch_size: int = 1000,
    seed: int = 7,
) -> Fig4Result:
    """Regenerate the Fig. 4 grid of yield-vs-qubits curves."""
    curves = detuning_sweep(
        steps_ghz=steps_ghz,
        sigmas_ghz=sigmas_ghz,
        sizes=sizes,
        batch_size=batch_size,
        seed=seed,
    )
    result = Fig4Result(sizes=sizes)
    for key, curve in curves.items():
        result.curves[key] = curve.yields
    return result


# ---------------------------------------------------------------------- #
# Fig. 6 — configuration counting
# ---------------------------------------------------------------------- #
def run_fig6_configurations(
    chiplet_yield: float | None = None,
    batch_size: int = 100_000,
    chiplet_qubits: int = 20,
    max_grid: int = 7,
    seed: int = 7,
):
    """Regenerate Fig. 6 (configurations and assembled-MCM bound vs. size).

    When ``chiplet_yield`` is ``None`` the yield of the 20-qubit chiplet is
    measured by Monte-Carlo at the state-of-the-art precision, mirroring the
    paper's ~69.4 % figure.
    """
    if chiplet_yield is None:
        design = ChipletDesign.build(chiplet_qubits)
        curve = yield_vs_qubits(
            sigma_ghz=SIGMA_LASER_TUNED_GHZ,
            step_ghz=0.06,
            sizes=(chiplet_qubits,),
            batch_size=5000,
            seed=seed,
            lattices={chiplet_qubits: design.lattice},
        )
        chiplet_yield = curve.yields[0]
    return configuration_curve(
        chiplet_yield=chiplet_yield,
        batch_size=batch_size,
        chiplet_qubits=chiplet_qubits,
        max_grid=max_grid,
    )


# ---------------------------------------------------------------------- #
# Section V-C — fabrication output
# ---------------------------------------------------------------------- #
def run_sec5c_fabrication_output(
    monolithic_qubits: int = 100,
    chiplet_qubits: int = 10,
    grid: tuple[int, int] = (2, 5),
    batch_size: int = 1000,
    sigma_ghz: float = SIGMA_LASER_TUNED_GHZ,
    seed: int = 7,
):
    """Regenerate the Section V-C worked example (about a 7.7x output gain)."""
    curve = yield_vs_qubits(
        sigma_ghz=sigma_ghz,
        step_ghz=0.06,
        sizes=(chiplet_qubits, monolithic_qubits),
        batch_size=batch_size,
        seed=seed,
    )
    chiplet_yield = curve.yield_at(chiplet_qubits)
    monolithic_yield = curve.yield_at(monolithic_qubits)
    return compare_fabrication_output(
        monolithic_yield=monolithic_yield,
        chiplet_yield=chiplet_yield,
        batch_size=batch_size,
        monolithic_qubits=monolithic_qubits,
        chiplet_qubits=chiplet_qubits,
        grid_rows=grid[0],
        grid_cols=grid[1],
    )


# ---------------------------------------------------------------------- #
# Fig. 7 — detuning vs. CX infidelity model
# ---------------------------------------------------------------------- #
@dataclass
class Fig7Result:
    """Summary of the empirical detuning-binned CX model."""

    median: float
    mean: float
    bin_means: dict[float, float]
    num_points: int

    def format_table(self) -> str:
        """Render the per-bin mean infidelities."""
        header = ["bin centre (GHz)", "mean CX infidelity"]
        body = [[f"{centre:.2f}", f"{value:.4f}"] for centre, value in sorted(self.bin_means.items())]
        return format_table(header, body)


def run_fig7_detuning_model(seed: int = 11) -> Fig7Result:
    """Regenerate the Fig. 7 data summary (median 1.2 %, mean 1.8 %)."""
    model = washington_cx_model(seed=seed)
    return Fig7Result(
        median=model.median(),
        mean=model.mean(),
        bin_means=model.bin_means(),
        num_points=model.num_observations,
    )


# ---------------------------------------------------------------------- #
# Fig. 8 — yield comparison
# ---------------------------------------------------------------------- #
@dataclass
class Fig8Result:
    """Yield-vs-qubits series for monolithic and MCM architectures."""

    monolithic: list[tuple[int, float]] = field(default_factory=list)
    chiplet_yields: dict[int, float] = field(default_factory=dict)
    mcm_series: dict[int, list[tuple[int, float, float]]] = field(default_factory=dict)
    yield_improvements: dict[int, float] = field(default_factory=dict)

    def format_table(self) -> str:
        """Render average yield-improvement factors per chiplet size."""
        header = ["chiplet size", "chiplet yield", "avg yield improvement (x)"]
        body = [
            [
                size,
                f"{self.chiplet_yields.get(size, float('nan')):.3f}",
                "inf" if self.yield_improvements[size] == inf else f"{self.yield_improvements[size]:.2f}",
            ]
            for size in sorted(self.yield_improvements)
        ]
        return format_table(header, body)


def run_fig8_yield_comparison(
    study: ArchitectureStudy,
    chiplet_sizes: tuple[int, ...] | None = None,
) -> Fig8Result:
    """Regenerate Fig. 8: yield vs. system size for every architecture."""
    config = study.config
    sizes = chiplet_sizes or config.chiplet_sizes
    result = Fig8Result()

    monolithic_sizes: set[int] = set()
    for chiplet_size in sizes:
        for grid in mcm_dimensions_for(chiplet_size, config.max_qubits):
            monolithic_sizes.add(chiplet_size * grid[0] * grid[1])
    for size in sorted(monolithic_sizes):
        mono = study.monolithic_result(size)
        result.monolithic.append((size, mono.collision_free_yield))

    for chiplet_size in sizes:
        chiplet_bin = study.chiplet_bin(chiplet_size)
        result.chiplet_yields[chiplet_size] = chiplet_bin.collision_free_yield
        series = []
        mcm_yields = []
        mono_yields = []
        for grid in mcm_dimensions_for(chiplet_size, config.max_qubits):
            mcm = study.mcm_result(chiplet_size, grid)
            num_qubits = mcm.design.num_qubits
            series.append(
                (num_qubits, mcm.post_assembly_yield, mcm.post_assembly_yield_100x)
            )
            mcm_yields.append(mcm.post_assembly_yield)
            mono_yields.append(study.monolithic_result(num_qubits).collision_free_yield)
        series.sort()
        result.mcm_series[chiplet_size] = series
        # "Average yield improvement" of the chiplet group: the mean MCM
        # yield over its configurations relative to the mean monolithic
        # yield over the same system sizes (infinite when every monolithic
        # counterpart has zero yield, as for the paper's 200-qubit chiplet).
        mean_mono = float(np.mean(mono_yields)) if mono_yields else 0.0
        mean_mcm = float(np.mean(mcm_yields)) if mcm_yields else 0.0
        result.yield_improvements[chiplet_size] = (
            mean_mcm / mean_mono if mean_mono > 0 else inf
        )
    return result


# ---------------------------------------------------------------------- #
# Fig. 9 — average-infidelity heat-maps
# ---------------------------------------------------------------------- #
@dataclass
class Fig9Result:
    """E_avg ratios per scenario, chiplet size and square MCM dimension."""

    cells: list[dict] = field(default_factory=list)

    def ratios_for_scenario(self, scenario: str) -> dict[tuple[int, int], float]:
        """Map (chiplet size, grid dimension) -> ratio for one scenario."""
        return {
            (c["chiplet_size"], c["grid"][0]): c["ratio"]
            for c in self.cells
            if c["scenario"] == scenario
        }

    def fraction_below_one(self, scenario: str) -> float:
        """Fraction of (finite) cells where the MCM wins for one scenario."""
        ratios = [
            c["ratio"]
            for c in self.cells
            if c["scenario"] == scenario and np.isfinite(c["ratio"])
        ]
        if not ratios:
            return float("nan")
        return float(np.mean([r < 1.0 for r in ratios]))

    def best_ratio(self, scenario: str) -> float:
        """Lowest finite ratio for one scenario (the paper quotes ~0.815)."""
        ratios = [
            c["ratio"]
            for c in self.cells
            if c["scenario"] == scenario and np.isfinite(c["ratio"])
        ]
        return min(ratios) if ratios else float("nan")

    def format_table(self, scenario: str) -> str:
        """Render one scenario's heat-map as a table."""
        header = ["chiplet", "grid", "qubits", "E_mcm", "E_mono", "ratio"]
        body = []
        for cell in self.cells:
            if cell["scenario"] != scenario:
                continue
            ratio = cell["ratio"]
            body.append(
                [
                    cell["chiplet_size"],
                    f"{cell['grid'][0]}x{cell['grid'][1]}",
                    cell["num_qubits"],
                    f"{cell['mcm_eavg']:.4f}",
                    "n/a" if np.isnan(cell["mono_eavg"]) else f"{cell['mono_eavg']:.4f}",
                    "inf-yield" if not np.isfinite(ratio) else f"{ratio:.3f}",
                ]
            )
        return format_table(header, body)


def run_fig9_infidelity_heatmap(
    study: ArchitectureStudy,
    chiplet_sizes: tuple[int, ...] | None = None,
) -> Fig9Result:
    """Regenerate the Fig. 9 heat-maps for all four link scenarios."""
    config = study.config
    sizes = chiplet_sizes or tuple(
        s for s in config.chiplet_sizes if square_dimensions_for(s, config.max_qubits)
    )
    result = Fig9Result()
    for chiplet_size in sizes:
        for grid in square_dimensions_for(chiplet_size, config.max_qubits):
            mcm = study.mcm_result(chiplet_size, grid)
            mono = study.monolithic_result(mcm.design.num_qubits)
            # Scaled-yield comparison (Section VII-C2): the monolithic pool
            # contains only its collision-free devices, so the modular pool
            # is restricted to the same number of modules, built from the
            # best chiplets of the sorted, collision-free bin.
            num_mono_devices = int(
                round(mono.collision_free_yield * config.monolithic_batch_size)
            )
            count = max(1, num_mono_devices)
            for scenario in study.scenarios:
                mcm_eavg = mcm.eavg_for_scenario(scenario, count=count)
                ratio = (
                    mcm_eavg / mono.eavg
                    if np.isfinite(mono.eavg) and mono.eavg > 0
                    else float("inf")
                )
                result.cells.append(
                    {
                        "chiplet_size": chiplet_size,
                        "grid": grid,
                        "num_qubits": mcm.design.num_qubits,
                        "scenario": scenario.name,
                        "mcm_eavg": mcm_eavg,
                        "mono_eavg": mono.eavg,
                        "ratio": ratio,
                    }
                )
    return result


# ---------------------------------------------------------------------- #
# Fig. 10 — application-level fidelity ratios
# ---------------------------------------------------------------------- #
@dataclass
class Fig10Result:
    """Per-system, per-benchmark fidelity comparison."""

    utilisation: float
    rows: list[dict] = field(default_factory=list)

    def ratios_for_benchmark(self, benchmark: str) -> list[tuple[int, float]]:
        """(system size, MCM/monolithic fidelity ratio) for one benchmark."""
        return [
            (r["num_qubits"], r["ratio"]) for r in self.rows if r["benchmark"] == benchmark
        ]

    def mcm_advantage_fraction(self, benchmark: str, chiplet_sizes: tuple[int, ...]) -> float:
        """Fraction of systems (of given chiplet sizes) where the MCM wins."""
        values = [
            r["ratio"] >= 1.0
            for r in self.rows
            if r["benchmark"] == benchmark and r["chiplet_size"] in chiplet_sizes
        ]
        return float(np.mean(values)) if values else float("nan")

    def format_table(self) -> str:
        """Render every comparison row."""
        header = [
            "chiplet", "grid", "qubits", "benchmark",
            "log10F_mcm", "log10F_mono", "ratio",
        ]
        body = []
        for r in self.rows:
            ratio = r["ratio"]
            body.append(
                [
                    r["chiplet_size"],
                    f"{r['grid'][0]}x{r['grid'][1]}",
                    r["num_qubits"],
                    r["benchmark"],
                    f"{r['mcm_log10_fidelity']:.2f}",
                    "0-yield" if r["mono_log10_fidelity"] is None else f"{r['mono_log10_fidelity']:.2f}",
                    "inf" if ratio == inf else f"{ratio:.3g}",
                ]
            )
        return format_table(header, body)


def run_fig10_applications(
    study: ArchitectureStudy,
    chiplet_sizes: tuple[int, ...] | None = None,
    square_only: bool = True,
    benchmarks: tuple[str, ...] = BENCHMARK_NAMES,
    utilisation: float = 0.8,
    seed: int = 5,
) -> Fig10Result:
    """Regenerate Fig. 10: benchmark fidelity products, MCM vs. monolithic.

    Parameters
    ----------
    study:
        Shared architecture study (provides devices for both architectures).
    chiplet_sizes:
        Chiplet sizes to include; defaults to every size with a square MCM
        when ``square_only`` is set, otherwise every paper size.
    square_only:
        Restrict to the ``n x n`` systems of Fig. 10(b) (also the Fig. 9
        subset); the full 102-configuration sweep of Fig. 10(a) is obtained
        with ``square_only=False``.
    benchmarks:
        Benchmark names to compile.
    utilisation:
        Fraction of device qubits targeted by each benchmark (paper: 80 %).
    """
    config = study.config
    result = Fig10Result(utilisation=utilisation)
    if chiplet_sizes is None:
        chiplet_sizes = tuple(
            s
            for s in config.chiplet_sizes
            if not square_only or square_dimensions_for(s, config.max_qubits)
        )

    for chiplet_size in chiplet_sizes:
        grids = (
            square_dimensions_for(chiplet_size, config.max_qubits)
            if square_only
            else mcm_dimensions_for(chiplet_size, config.max_qubits)
        )
        for grid in grids:
            mcm = study.mcm_result(chiplet_size, grid)
            if mcm.best_device is None:
                continue
            mono = study.monolithic_result(mcm.design.num_qubits)
            width = max(2, int(round(utilisation * mcm.design.num_qubits)))
            for benchmark in benchmarks:
                circuit = build_benchmark(benchmark, width, seed=seed)
                mcm_transpiled = transpile(circuit, mcm.best_device)
                mcm_score = fidelity_product(
                    mcm_transpiled.two_qubit_edges, mcm.best_device
                )
                mono_score: FidelityScore | None = None
                if mono.representative_device is not None:
                    mono_transpiled = transpile(circuit, mono.representative_device)
                    mono_score = fidelity_product(
                        mono_transpiled.two_qubit_edges, mono.representative_device
                    )
                result.rows.append(
                    {
                        "chiplet_size": chiplet_size,
                        "grid": grid,
                        "num_qubits": mcm.design.num_qubits,
                        "benchmark": benchmark,
                        "mcm_log10_fidelity": mcm_score.log10_fidelity,
                        "mono_log10_fidelity": (
                            mono_score.log10_fidelity if mono_score is not None else None
                        ),
                        "mcm_two_qubit_gates": mcm_score.num_two_qubit_gates,
                        "mono_two_qubit_gates": (
                            mono_score.num_two_qubit_gates if mono_score is not None else None
                        ),
                        "ratio": fidelity_ratio(mcm_score, mono_score),
                    }
                )
    return result


# ---------------------------------------------------------------------- #
# Table II — compiled benchmark details
# ---------------------------------------------------------------------- #
@dataclass
class Table2Result:
    """Gate-count details for compiled benchmarks on 2x2 MCMs."""

    rows: list[dict] = field(default_factory=list)

    def format_table(self) -> str:
        """Render the Table II rows."""
        header = ["chiplet", "dim", "qubits", "benchmark", "1q", "2q", "2q critical"]
        body = [
            [
                r["chiplet_size"],
                f"{r['grid'][0]}x{r['grid'][1]}",
                r["num_qubits"],
                r["benchmark"],
                r["num_one_qubit"],
                r["num_two_qubit"],
                r["two_qubit_critical_path"],
            ]
            for r in self.rows
        ]
        return format_table(header, body)


def run_table2_compiled_benchmarks(
    chiplet_sizes: tuple[int, ...] = (10, 20, 40, 60, 90),
    grid: tuple[int, int] = (2, 2),
    benchmarks: tuple[str, ...] = BENCHMARK_NAMES,
    utilisation: float = 0.8,
    seed: int = 5,
) -> Table2Result:
    """Regenerate Table II: compiled gate counts for the 2x2 MCM systems."""
    result = Table2Result()
    for chiplet_size in chiplet_sizes:
        design = ChipletDesign.build(chiplet_size)
        from repro.core.mcm import MCMDesign  # local import to avoid cycles

        mcm = MCMDesign.build(design, *grid)
        coupling = mcm.coupling_map()
        width = max(2, int(round(utilisation * mcm.num_qubits)))
        for benchmark in benchmarks:
            circuit = build_benchmark(benchmark, width, seed=seed)
            transpiled = transpile(circuit, coupling)
            result.rows.append(
                {
                    "chiplet_size": chiplet_size,
                    "grid": grid,
                    "num_qubits": mcm.num_qubits,
                    "benchmark": benchmark,
                    "num_one_qubit": transpiled.metrics.num_one_qubit,
                    "num_two_qubit": transpiled.metrics.num_two_qubit,
                    "two_qubit_critical_path": transpiled.metrics.two_qubit_critical_path,
                }
            )
    return result
