"""Experiment harness: architecture studies, per-figure drivers, reporting.

The figure/table drivers live in :mod:`repro.analysis.figures` (one module
per experiment) and run through the parallel execution engine
(:mod:`repro.engine`); :mod:`repro.analysis.registry` maps experiment
names to runners for the ``python -m repro`` CLI.
"""

from repro.analysis.figures import (
    Fig3Result,
    Fig4Result,
    Fig7Result,
    Fig8Result,
    Fig9Result,
    Fig10Result,
    Table1Result,
    Table2Result,
    run_fig3_processor_trends,
    run_fig4_yield_sweep,
    run_fig6_configurations,
    run_fig7_detuning_model,
    run_fig8_yield_comparison,
    run_fig9_infidelity_heatmap,
    run_fig10_applications,
    run_sec5c_fabrication_output,
    run_table1_collision_criteria,
    run_table2_compiled_benchmarks,
)
from repro.analysis.reporting import format_series, format_table
from repro.analysis.study import ArchitectureStudy, MCMResult, MonolithicResult, StudyConfig
from repro.analysis.sweeps import grid_sweep, sweep_parameter

__all__ = [
    "Fig3Result",
    "Fig4Result",
    "Fig7Result",
    "Fig8Result",
    "Fig9Result",
    "Fig10Result",
    "Table1Result",
    "Table2Result",
    "run_fig3_processor_trends",
    "run_fig4_yield_sweep",
    "run_fig6_configurations",
    "run_fig7_detuning_model",
    "run_fig8_yield_comparison",
    "run_fig9_infidelity_heatmap",
    "run_fig10_applications",
    "run_sec5c_fabrication_output",
    "run_table1_collision_criteria",
    "run_table2_compiled_benchmarks",
    "format_series",
    "format_table",
    "ArchitectureStudy",
    "MCMResult",
    "MonolithicResult",
    "StudyConfig",
    "grid_sweep",
    "sweep_parameter",
]
