"""Generic parameter-sweep helpers used by the ablation benchmarks.

Both helpers accept an ``executor`` (any object with ``map_calls``, i.e. a
:class:`repro.engine.ExecutionEngine`) to fan the sweep out over worker
processes, and a ``seed``: when given, every combination receives its own
positionally-derived child seed as a ``seed=`` keyword argument, making
sweeps reproducible end-to-end and independent of execution order.
"""

from __future__ import annotations

import inspect
from itertools import product
from typing import Callable, Iterable, Mapping, Sequence

from repro.engine.dispatch import run_calls
from repro.engine.seeding import spawn_seeds as _child_seeds

__all__ = ["grid_sweep", "sweep_parameter"]


def grid_sweep(
    parameter_grid: Mapping[str, Sequence[object]],
    runner: Callable[..., object],
    seed: int | None = None,
    executor=None,
    name: str = "grid_sweep",
    share_draws: Sequence[str] = (),
) -> list[dict]:
    """Run ``runner`` for every combination of the parameter grid.

    Parameters
    ----------
    parameter_grid:
        Mapping from keyword-argument name to the values to sweep.
    runner:
        Callable invoked with one keyword argument per grid dimension
        (plus ``seed`` when a master seed is given).
    seed:
        Master seed; each combination gets its own child seed passed as a
        ``seed=`` keyword (the runner must accept it).
    executor:
        Optional engine hook; ``runner`` must then be picklable
        (module-level) for the process-pool backend.
    name:
        Task-family label for instrumentation and caching.
    share_draws:
        Grid dimensions excluded from seed derivation: combinations that
        differ only along these dimensions receive the *same* child seed,
        so a seeded Monte-Carlo runner compares them on identical draws
        (common random numbers) — and, for fabrication runners, the
        sample bank (:mod:`repro.core.sample_bank`) turns the repeats
        into cache hits.  The empty default derives one seed per
        combination, exactly the historical behavior.

    Returns
    -------
    list of dict
        One record per combination with the parameter values plus a
        ``"result"`` key holding the runner's return value.
    """
    names = list(parameter_grid)
    if seed is not None and "seed" in names:
        raise ValueError(
            "'seed' cannot be both a grid dimension and a derived master "
            "seed; drop one of the two"
        )
    unknown = [dim for dim in share_draws if dim not in names]
    if unknown:
        raise ValueError(
            f"share_draws names {unknown!r} that are not grid dimensions "
            f"(grid has {names!r})"
        )
    combos = list(product(*(parameter_grid[name] for name in names)))
    if share_draws:
        # Seed identity = the combination restricted to the non-shared
        # dimensions, numbered in first-appearance order so the mapping
        # is independent of which dimensions are shared.
        keep = [name for name in names if name not in share_draws]
        reduced_index: dict[tuple, int] = {}
        reduced_of = []
        for values in combos:
            key = tuple(v for n, v in zip(names, values) if n in keep)
            reduced_of.append(reduced_index.setdefault(key, len(reduced_index)))
        base_seeds = _child_seeds(seed, len(reduced_index))
        seeds = [base_seeds[index] for index in reduced_of]
    else:
        seeds = _child_seeds(seed, len(combos))
    kwargs_list = []
    for values, child_seed in zip(combos, seeds):
        kwargs = dict(zip(names, values))
        if seed is not None:
            kwargs["seed"] = child_seed
        kwargs_list.append(kwargs)
    # Unseeded sweeps may be stochastic without the engine knowing — keep
    # them out of the cache.
    results = run_calls(
        runner, kwargs_list, executor=executor, name=name, cacheable=seed is not None
    )
    return [
        {**kwargs, "result": result} for kwargs, result in zip(kwargs_list, results)
    ]


def sweep_parameter(
    values: Iterable[object],
    runner: Callable[..., object],
    seed: int | None = None,
    executor=None,
    name: str = "sweep_parameter",
    share_draws: bool = False,
) -> list[tuple[object, object]]:
    """One-dimensional sweep returning ``(value, result)`` pairs.

    With a ``seed``, the runner is called as ``runner(value, seed=child)``;
    with an ``executor`` the points run through the engine (the value is
    passed under the runner's first parameter name, so any one-argument
    module-level runner works unchanged).  ``share_draws=True`` hands
    every value the *same* derived child seed — the swept parameter is
    the shared-draw axis, so a Monte-Carlo runner compares all values on
    identical draws and the sample bank collapses the repeats into one
    sampling pass.
    """
    values = list(values)
    if share_draws:
        seeds = [_child_seeds(seed, 1)[0]] * len(values)
    else:
        seeds = _child_seeds(seed, len(values))
    if executor is None:
        if seed is None:
            return [(value, runner(value)) for value in values]
        return [
            (value, runner(value, seed=child))
            for value, child in zip(values, seeds)
        ]
    try:
        first = next(iter(inspect.signature(runner).parameters.values()))
        if first.kind is inspect.Parameter.POSITIONAL_ONLY:
            raise ValueError
        value_param = first.name
    except (ValueError, TypeError, StopIteration):
        raise ValueError(
            "executor-backed sweeps call the runner by keyword; wrap "
            f"{runner!r} in a module-level function with named parameters"
        ) from None
    if seed is not None and value_param == "seed":
        raise ValueError(
            "the runner's first parameter is named 'seed', which collides "
            "with the derived child seed; rename it or drop the master seed"
        )
    kwargs_list = []
    for value, child in zip(values, seeds):
        kwargs = {value_param: value}
        if seed is not None:
            kwargs["seed"] = child
        kwargs_list.append(kwargs)
    results = run_calls(
        runner, kwargs_list, executor=executor, name=name, cacheable=seed is not None
    )
    return list(zip(values, results))
