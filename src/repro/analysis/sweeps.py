"""Generic parameter-sweep helpers used by the ablation benchmarks."""

from __future__ import annotations

from itertools import product
from typing import Callable, Iterable, Mapping, Sequence

__all__ = ["grid_sweep", "sweep_parameter"]


def grid_sweep(
    parameter_grid: Mapping[str, Sequence[object]],
    runner: Callable[..., object],
) -> list[dict]:
    """Run ``runner`` for every combination of the parameter grid.

    Parameters
    ----------
    parameter_grid:
        Mapping from keyword-argument name to the values to sweep.
    runner:
        Callable invoked with one keyword argument per grid dimension.

    Returns
    -------
    list of dict
        One record per combination with the parameter values plus a
        ``"result"`` key holding the runner's return value.
    """
    names = list(parameter_grid)
    records = []
    for values in product(*(parameter_grid[name] for name in names)):
        kwargs = dict(zip(names, values))
        records.append({**kwargs, "result": runner(**kwargs)})
    return records


def sweep_parameter(
    values: Iterable[object],
    runner: Callable[[object], object],
) -> list[tuple[object, object]]:
    """One-dimensional sweep returning ``(value, result)`` pairs."""
    return [(value, runner(value)) for value in values]
