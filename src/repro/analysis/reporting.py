"""Plain-text table rendering and JSON export for experiment results.

The reproduction does not depend on any plotting library; every "figure"
benchmark prints the series the original figure plots, and these helpers
keep that output aligned and readable.  :func:`jsonable` is the
machine-readable counterpart: it flattens any experiment's result object
(dataclasses, numpy arrays, nested containers) into plain JSON types for
the CLI's ``--dump-json``.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable, Sequence

import numpy as np

__all__ = ["format_table", "format_series", "jsonable"]

#: Recursion cap for :func:`jsonable` (guards pathological cycles).
_MAX_DEPTH = 16


def jsonable(value: Any, depth: int = 0) -> Any:
    """Flatten an arbitrary result object into JSON-serialisable types.

    Dataclasses recurse over their comparable fields, numpy arrays
    become nested lists, mappings stringify non-string keys and are
    emitted with sorted keys, and anything unrecognised collapses to
    ``repr``.  Every number an
    experiment produces — including the confidence-interval bounds
    carried by :class:`repro.core.yield_model.YieldResult` fields —
    survives the conversion.
    """
    if depth > _MAX_DEPTH:
        return f"<depth-capped:{type(value).__name__}>"
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [jsonable(v, depth + 1) for v in value.tolist()]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: jsonable(getattr(value, f.name), depth + 1)
            for f in dataclasses.fields(value)
            if f.compare
        }
    if isinstance(value, dict):
        # Sorted keys make the output deterministic regardless of the
        # mapping's insertion order (defaultdicts populated per-phase or
        # per-family arrive in execution order, which varies by backend).
        converted = {
            (k if isinstance(k, str) else repr(k)): jsonable(v, depth + 1)
            for k, v in value.items()
        }
        return {k: converted[k] for k in sorted(converted)}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value, key=repr) if isinstance(value, (set, frozenset)) else value
        return [jsonable(v, depth + 1) for v in items]
    return repr(value)


def format_table(header: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a left-aligned, space-padded text table.

    Parameters
    ----------
    header:
        Column titles.
    rows:
        Row values (converted with ``str``).
    """
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(str(title)) for title in header]
    for row in materialised:
        if len(row) != len(header):
            raise ValueError("row length does not match the header")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(str(title).ljust(widths[i]) for i, title in enumerate(header)),
        "  ".join("-" * widths[i] for i in range(len(header))),
    ]
    for row in materialised:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str, points: Iterable[tuple[object, object]]) -> str:
    """Render an ``x -> y`` series with a title line."""
    lines = [name]
    for x, y in points:
        lines.append(f"  {x}: {y}")
    return "\n".join(lines)
