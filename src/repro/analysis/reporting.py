"""Plain-text table rendering for experiment results.

The reproduction does not depend on any plotting library; every "figure"
benchmark prints the series the original figure plots, and these helpers
keep that output aligned and readable.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_series"]


def format_table(header: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a left-aligned, space-padded text table.

    Parameters
    ----------
    header:
        Column titles.
    rows:
        Row values (converted with ``str``).
    """
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(str(title)) for title in header]
    for row in materialised:
        if len(row) != len(header):
            raise ValueError("row length does not match the header")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(str(title).ljust(widths[i]) for i, title in enumerate(header)),
        "  ".join("-" * widths[i] for i in range(len(header))),
    ]
    for row in materialised:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str, points: Iterable[tuple[object, object]]) -> str:
    """Render an ``x -> y`` series with a title line."""
    lines = [name]
    for x, y in points:
        lines.append(f"  {x}: {y}")
    return "\n".join(lines)
