"""The experiment registry behind ``python -m repro run <experiment>``.

Each figure/table driver is registered under its paper name with a
uniform runner signature::

    runner(engine, seed=None, batch_size=None, full=False, stats=None,
           topology=None, tuning=None, benchmarks=None, routing=None)
        -> (result, text)

``engine`` is an :class:`repro.engine.ExecutionEngine` (or ``None`` for
plain in-process execution), ``seed`` overrides the experiment's default
master seed, ``batch_size`` scales the Monte-Carlo batches, ``full``
requests the paper-sized configuration sweep where one exists,
``stats`` is an optional :class:`repro.stats.StatsOptions` (the CLI's
``--chunk-size`` / ``--ci-target`` / ``--max-samples``) threaded into
the yield Monte-Carlo where the experiment has one, ``topology``
selects a registered architecture (the CLI's ``--topology``) on the
experiments marked ``topology_aware``, and ``tuning`` is an optional
:class:`repro.tuning.TuningOptions` (the CLI's ``--tuning`` /
``--max-shift-mhz`` / ``--repair-budget``) routing the yield
Monte-Carlo through the post-fabrication repair stage on experiments
marked ``tuning_aware``.  ``benchmarks`` (the CLI's ``--benchmarks``)
restricts the compiled benchmark set and ``routing`` (the CLI's
``--routing``) selects a registered routing strategy on experiments
marked ``compiler_aware``.  ``text`` is the human-readable rendering
the CLI prints.
"""

from __future__ import annotations

from typing import Any

from repro.analysis.figures import (
    run_appsweep,
    run_fig3_processor_trends,
    run_repair_budget_sweep,
    run_topology_mcm_comparison,
    run_topology_yield_comparison,
    run_tuned_yield_comparison,
    run_fig4_yield_sweep,
    run_fig6_configurations,
    run_fig7_detuning_model,
    run_fig8_yield_comparison,
    run_fig9_infidelity_heatmap,
    run_fig10_applications,
    run_sec5c_fabrication_output,
    run_table1_collision_criteria,
    run_table2_compiled_benchmarks,
)
from repro.analysis.reporting import format_table
from repro.analysis.study import ArchitectureStudy, StudyConfig
from repro.circuits.benchmarks import BENCHMARK_NAMES
from repro.core.chiplet import PAPER_CHIPLET_SIZES
from repro.engine import ExperimentRegistry

__all__ = [
    "EXPERIMENTS",
    "build_study",
    "RUNNER_OPTION_NAMES",
    "normalize_runner_params",
]

EXPERIMENTS = ExperimentRegistry()

#: Keyword options every registered runner accepts (the uniform runner
#: signature documented above).  The service layer validates submitted
#: job parameters against this list and the CLI maps its flags onto it.
RUNNER_OPTION_NAMES = (
    "seed",
    "batch_size",
    "full",
    "stats",
    "topology",
    "tuning",
    "benchmarks",
    "routing",
)


def normalize_runner_params(params: dict[str, Any] | None) -> dict[str, Any]:
    """Canonicalise a runner-options mapping for submission/coalescing.

    Unknown keys raise ``ValueError`` with a did-you-mean suggestion;
    ``None`` values are dropped (an explicit ``seed=None`` means "use the
    experiment default", exactly like omitting it); ``benchmarks`` lists
    become tuples; keys are sorted.  Two submissions that would drive a
    runner identically therefore normalise to the same dict — the basis
    of the service's request-coalescing key.
    """
    from repro.engine.registry import did_you_mean

    cleaned: dict[str, Any] = {}
    for key in sorted(params or {}):
        if key not in RUNNER_OPTION_NAMES:
            suggestion = did_you_mean(key, RUNNER_OPTION_NAMES)
            raise ValueError(
                f"unknown experiment parameter {key!r}{suggestion} "
                f"(known: {', '.join(RUNNER_OPTION_NAMES)})"
            )
        value = (params or {})[key]
        if value is None:
            continue
        if key == "benchmarks":
            value = tuple(value)
        cleaned[key] = value
    return cleaned

#: Reduced-batch default so CLI runs finish in minutes on a laptop; the
#: paper's 10 000-die batches are requested with ``--batch 10000``.
DEFAULT_STUDY_BATCH = 2000

#: Chiplet sizes for the study-backed figures at reduced (CLI) scale.
CLI_CHIPLET_SIZES = (10, 20, 40)


def build_study(
    engine=None,
    seed: int | None = None,
    batch_size: int | None = None,
    full: bool = False,
) -> ArchitectureStudy:
    """An engine-aware study sized for CLI runs (paper-sized with ``full``)."""
    batch = batch_size or (10_000 if full else DEFAULT_STUDY_BATCH)
    config = StudyConfig(
        chiplet_batch_size=batch,
        monolithic_batch_size=batch,
        seed=seed if seed is not None else 2022,
        chiplet_sizes=PAPER_CHIPLET_SIZES if full else CLI_CHIPLET_SIZES,
    )
    return ArchitectureStudy(config, engine=engine)


def _fig3(engine, seed=None, batch_size=None, full=False, stats=None, topology=None, tuning=None, benchmarks=None, routing=None) -> tuple[Any, str]:
    result = run_fig3_processor_trends(seed=seed if seed is not None else 11)
    return result, result.format_table()


def _table1(engine, seed=None, batch_size=None, full=False, stats=None, topology=None, tuning=None, benchmarks=None, routing=None) -> tuple[Any, str]:
    result = run_table1_collision_criteria()
    return result, result.format_table()


def _fig4(engine, seed=None, batch_size=None, full=False, stats=None, topology=None, tuning=None, benchmarks=None, routing=None) -> tuple[Any, str]:
    result = run_fig4_yield_sweep(
        batch_size=batch_size or 1000,
        seed=seed if seed is not None else 7,
        engine=engine,
        stats=stats,
        topology=topology,
        tuning=tuning,
    )
    if stats is not None and not stats.is_default:
        text = (
            result.format_ci_table()
            + f"\ntotal Monte-Carlo samples: {result.samples_used()}"
        )
        return result, text
    return result, result.format_table()


def _fig6(engine, seed=None, batch_size=None, full=False, stats=None, topology=None, tuning=None, benchmarks=None, routing=None) -> tuple[Any, str]:
    points = run_fig6_configurations(
        batch_size=batch_size or 100_000,
        seed=seed if seed is not None else 7,
        engine=engine,
    )
    text = format_table(
        ["grid", "log10(configs)", "max MCMs"],
        [
            [f"{p.grid[0]}x{p.grid[1]}", f"{p.log10_configurations:.1f}", p.max_mcms]
            for p in points
        ],
    )
    return points, text


def _sec5c(engine, seed=None, batch_size=None, full=False, stats=None, topology=None, tuning=None, benchmarks=None, routing=None) -> tuple[Any, str]:
    result = run_sec5c_fabrication_output(
        batch_size=batch_size or 1000,
        seed=seed if seed is not None else 7,
        engine=engine,
        stats=stats,
    )
    text = (
        f"monolithic devices: {result.monolithic_devices:.1f}\n"
        f"MCM devices (upper bound): {result.mcm_devices:.1f}\n"
        f"fabrication-output gain: {result.gain:.2f}x"
    )
    if result.gain_ci is not None:
        low, high = result.gain_ci
        high_text = "inf" if high == float("inf") else f"{high:.2f}"
        text += f"\ngain CI (conservative): [{low:.2f}, {high_text}]x"
    return result, text


def _fig7(engine, seed=None, batch_size=None, full=False, stats=None, topology=None, tuning=None, benchmarks=None, routing=None) -> tuple[Any, str]:
    result = run_fig7_detuning_model(seed=seed if seed is not None else 11)
    summary = (
        f"median {result.median:.4f}, mean {result.mean:.4f} "
        f"({result.num_points} points)\n"
    )
    return result, summary + result.format_table()


def _fig8(engine, seed=None, batch_size=None, full=False, stats=None, topology=None, tuning=None, benchmarks=None, routing=None) -> tuple[Any, str]:
    study = build_study(engine, seed, batch_size, full)
    result = run_fig8_yield_comparison(study)
    return result, result.format_table()


def _fig9(engine, seed=None, batch_size=None, full=False, stats=None, topology=None, tuning=None, benchmarks=None, routing=None) -> tuple[Any, str]:
    study = build_study(engine, seed, batch_size, full)
    result = run_fig9_infidelity_heatmap(study)
    sections = []
    for scenario in study.scenarios:
        sections.append(f"[scenario {scenario.name}]")
        sections.append(result.format_table(scenario.name))
    return result, "\n".join(sections)


def _fig10(engine, seed=None, batch_size=None, full=False, stats=None, topology=None, tuning=None, benchmarks=None, routing=None) -> tuple[Any, str]:
    study = build_study(engine, seed, batch_size, full)
    result = run_fig10_applications(
        study,
        square_only=not full,
        benchmarks=tuple(benchmarks) if benchmarks else BENCHMARK_NAMES,
        seed=seed if seed is not None else 5,
        engine=engine,
        routing=routing or "basic",
    )
    return result, result.format_table()


def _appsweep(
    engine, seed=None, batch_size=None, full=False, stats=None, topology=None,
    tuning=None, benchmarks=None, routing=None,
) -> tuple[Any, str]:
    result = run_appsweep(
        topologies=(topology,) if topology else None,
        benchmarks=tuple(benchmarks) if benchmarks else None,
        routings=(routing,) if routing else None,
        batch_size=batch_size or 400,
        seed=seed if seed is not None else 7,
        engine=engine,
        tuning=tuning,
    )
    return result, result.format_table()


def _topoyield(
    engine, seed=None, batch_size=None, full=False, stats=None, topology=None,
    tuning=None, benchmarks=None, routing=None,
) -> tuple[Any, str]:
    topologies = (topology,) if topology else None
    result = run_topology_yield_comparison(
        topologies=topologies,
        batch_size=batch_size or 1000,
        seed=seed if seed is not None else 7,
        engine=engine,
        stats=stats,
        tuning=tuning,
    )
    return result, result.format_table()


def _topomcm(
    engine, seed=None, batch_size=None, full=False, stats=None, topology=None,
    tuning=None, benchmarks=None, routing=None,
) -> tuple[Any, str]:
    topologies = (topology,) if topology else None
    result = run_topology_mcm_comparison(
        topologies=topologies,
        batch_size=batch_size or 1000,
        seed=seed if seed is not None else 7,
        engine=engine,
    )
    return result, result.format_table()


def _tunedyield(
    engine, seed=None, batch_size=None, full=False, stats=None, topology=None,
    tuning=None, benchmarks=None, routing=None,
) -> tuple[Any, str]:
    topologies = (topology,) if topology else None
    result = run_tuned_yield_comparison(
        topologies=topologies,
        batch_size=batch_size or 400,
        seed=seed if seed is not None else 7,
        engine=engine,
        stats=stats,
        tuning=tuning,
    )
    return result, result.format_table()


def _repairbudget(
    engine, seed=None, batch_size=None, full=False, stats=None, topology=None,
    tuning=None, benchmarks=None, routing=None,
) -> tuple[Any, str]:
    result = run_repair_budget_sweep(
        topology=topology,
        batch_size=batch_size or 400,
        seed=seed if seed is not None else 7,
        engine=engine,
        tuning=tuning,
    )
    return result, result.format_table()


def _table2(engine, seed=None, batch_size=None, full=False, stats=None, topology=None, tuning=None, benchmarks=None, routing=None) -> tuple[Any, str]:
    sizes = (10, 20, 40, 60, 90) if full else (10, 20, 40)
    result = run_table2_compiled_benchmarks(
        chiplet_sizes=sizes,
        seed=seed if seed is not None else 5,
        engine=engine,
    )
    return result, result.format_table()


EXPERIMENTS.register(
    "fig3", "Fig. 3(b): CX infidelity distributions vs. processor size", _fig3
)
EXPERIMENTS.register(
    "table1", "Table I: the seven collision criteria, demonstrated", _table1
)
EXPERIMENTS.register(
    "fig4",
    "Fig. 4: collision-free yield vs. qubits (parallel Monte-Carlo grid)",
    _fig4,
    aliases=("yield",),
    stats_aware=True,
    topology_aware=True,
    tuning_aware=True,
)
EXPERIMENTS.register(
    "fig6", "Fig. 6: configuration counting and assembled-MCM bound", _fig6
)
EXPERIMENTS.register(
    "sec5c",
    "Section V-C: fabrication-output gain of chiplets",
    _sec5c,
    stats_aware=True,
)
EXPERIMENTS.register(
    "fig7", "Fig. 7: detuning-binned empirical CX error model", _fig7
)
EXPERIMENTS.register(
    "fig8",
    "Fig. 8: MCM vs. monolithic yield comparison (engine-prefetched)",
    _fig8,
    aliases=("mcm",),
)
EXPERIMENTS.register(
    "fig9", "Fig. 9: average-infidelity heat-maps, four link scenarios", _fig9
)
EXPERIMENTS.register(
    "fig10",
    "Fig. 10: application-level fidelity ratios (engine-parallel compiles)",
    _fig10,
    aliases=("apps",),
    compiler_aware=True,
)
EXPERIMENTS.register(
    "table2", "Table II: compiled benchmark gate counts on 2x2 MCMs", _table2
)
EXPERIMENTS.register(
    "topoyield",
    "Cross-topology yield-vs-size comparison (heavy-hex / square / ring)",
    _topoyield,
    aliases=("topologies",),
    stats_aware=True,
    topology_aware=True,
    tuning_aware=True,
)
EXPERIMENTS.register(
    "topomcm",
    "Cross-topology chiplet -> MCM assembly comparison",
    _topomcm,
    topology_aware=True,
)
EXPERIMENTS.register(
    "tunedyield",
    "As-fab vs. post-fabrication-repaired yield curves per topology",
    _tunedyield,
    aliases=("repair",),
    stats_aware=True,
    topology_aware=True,
    tuning_aware=True,
)
EXPERIMENTS.register(
    "repairbudget",
    "Repaired yield vs. tuner max-shift and per-qubit budget sweep",
    _repairbudget,
    aliases=("budget",),
    topology_aware=True,
    tuning_aware=True,
)
EXPERIMENTS.register(
    "appsweep",
    "Application fidelity across topology x routing x repair ensembles",
    _appsweep,
    aliases=("appeval",),
    topology_aware=True,
    tuning_aware=True,
    compiler_aware=True,
)
