"""Engine-parallel application evaluation: compile+score as task units.

The Fig. 10 sweep historically compiled every (system, benchmark) pair
serially in the parent process.  This module decomposes that inner loop
into module-level, picklable task units so the whole application stack
rides the execution engine: :func:`compile_and_score` compiles ONE
benchmark onto ONE device with a named routing strategy and returns a
plain-dict score, and the drivers
(:func:`repro.analysis.figures.fig10_apps.run_fig10_applications`,
:func:`repro.analysis.figures.appsweep.run_appsweep`) submit flat
batches of them through :func:`repro.engine.dispatch.run_calls`.

Seeding contract
----------------
Compilation is deterministic; the only randomness is benchmark-circuit
construction (BV strings, QAOA graphs, primacy layers).  Every task
carries its circuit seed as an explicit ``circuit_seed`` parameter:

* ``run_fig10_applications`` passes its single historical seed to every
  task, so the engine-parallel sweep is bit-identical to the seed-state
  serial loop (the ``fig10`` golden pins this);
* the appsweep driver derives per-benchmark seeds with
  ``SeedSequence.spawn`` keyed on each benchmark's position in
  :data:`~repro.circuits.benchmarks.BENCHMARK_NAMES`
  (:func:`benchmark_seeds`) — never on its position in a caller-filtered
  selection — so ``--benchmarks qaoa`` reproduces exactly the qaoa rows
  of the full sweep at the same master seed.

Because seeds are data, ``--jobs N`` is bit-identical to sequential
execution, however the tasks land on workers.  ``circuit_seed=None`` is
still deterministic — every benchmark builder maps a ``None`` seed to
``0`` (see :data:`repro.circuits.benchmarks.BENCHMARKS`) — so caching
these tasks never freezes live randomness.

Cache contract
--------------
Tasks are cached content-addressed: the key hashes the benchmark name,
width, circuit seed, routing/layout strategy names AND the full device
(frequencies, labels, error map) through the engine's ``stable_token``.
Re-running an unchanged sweep is all cache hits; any change to the
device population, the strategies, or any ``repro`` source invalidates
exactly as the engine's code-version token dictates.

Routing-cache contract
----------------------
Noise-aware compilation shares the process-global routing cache in
:mod:`repro.compiler.routing`: the weighted-graph structures (CSR cost
matrix plus lazily-filled per-source Dijkstra predecessor rows) are
memoised on a content digest of the device's coupling map and edge-error
map, so every :func:`compile_and_score` task compiling onto the same
device reuses one ``RoutingWeights`` entry instead of rebuilding it.
Within a fused engine super-task the whole run shares one worker
process, so consecutive sub-tasks hit the same cache — the dominant
per-compile cost collapses to path reconstruction.  The cache changes
*when* shortest paths are computed, never *what* they are (same weights,
same tie-breaks), so cached and cold compiles are bit-identical and the
``fig10``/``appsweep`` goldens pin that.

Ensemble scoring
----------------
A single ``best_device`` per configuration is a noisy estimator of an
architecture's application quality — it samples one order statistic of
the assembled-module population.  :func:`summarise_ensemble` scores a
top-k device ensemble instead and reports the median log-fidelity with
a distribution-free order-statistic spread interval
(:func:`repro.stats.median_interval`).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import inf, isnan
from typing import Sequence

from repro.circuits.benchmarks import BENCHMARK_NAMES, build_benchmark
from repro.compiler.transpile import transpile
from repro.device.device import Device
from repro.engine.dispatch import run_calls
from repro.engine.seeding import spawn_seeds
from repro.simulation.esp import FidelityScore, fidelity_product, fidelity_ratio
from repro.stats import ConfidenceInterval, median_interval, midpoint_median

__all__ = [
    "EnsembleSummary",
    "benchmark_seeds",
    "compile_and_score",
    "run_compile_jobs",
    "score_from_row",
    "summarise_ensemble",
]

#: Engine task-family name for the compile+score unit.
TASK_NAME = "appeval.compile"


def compile_and_score(
    benchmark: str,
    width: int,
    circuit_seed: int | None,
    device: Device,
    routing: str = "basic",
    layout_method: str = "auto",
) -> dict:
    """Compile one benchmark onto one device and score it (engine task unit).

    Returns a plain dict (picklable, JSON-able) rather than result
    objects so the engine's cache stores exactly the numbers the
    drivers consume.
    """
    circuit = build_benchmark(benchmark, width, seed=circuit_seed)
    transpiled = transpile(
        circuit, device, layout_method=layout_method, routing=routing
    )
    score = fidelity_product(transpiled.two_qubit_edges, device)
    return {
        "benchmark": benchmark,
        "width": width,
        "routing": routing,
        "device": device.name,
        "log10_fidelity": score.log10_fidelity,
        "num_two_qubit_gates": score.num_two_qubit_gates,
        "num_swaps": transpiled.num_swaps,
    }


def run_compile_jobs(kwargs_list: Sequence[dict], engine=None) -> list[dict]:
    """Execute a batch of :func:`compile_and_score` tasks, order-preserving.

    ``engine=None`` runs in-process (the golden-regression path); an
    :class:`~repro.engine.ExecutionEngine` fans the batch out over
    worker processes with content-addressed caching.
    """
    return run_calls(compile_and_score, list(kwargs_list), engine, name=TASK_NAME)


def score_from_row(row: dict) -> FidelityScore:
    """Rehydrate the :class:`FidelityScore` a task row carries."""
    return FidelityScore(
        log10_fidelity=row["log10_fidelity"],
        num_two_qubit_gates=row["num_two_qubit_gates"],
    )


def benchmark_seeds(seed: int | None) -> dict[str, int | None]:
    """One child circuit seed per benchmark, keyed by canonical position.

    Seeds derive from each benchmark's position in
    :data:`BENCHMARK_NAMES` — never from its position in a filtered
    selection — so restricting a sweep to a benchmark subset reproduces
    exactly the rows of the full run at the same master seed.
    """
    return dict(zip(BENCHMARK_NAMES, spawn_seeds(seed, len(BENCHMARK_NAMES))))


@dataclass(frozen=True)
class EnsembleSummary:
    """Median-with-spread summary of one configuration's device ensemble.

    Attributes
    ----------
    median_log10_fidelity:
        Median log10 fidelity product over the scored devices (``nan``
        for an empty ensemble, ``-inf`` when the median device hits a
        dead coupling).
    spread:
        Order-statistic interval for that median
        (:func:`repro.stats.median_interval`); ``None`` for an empty
        ensemble.
    num_devices:
        Ensemble size actually scored.
    median_swaps:
        Median routed SWAP count over the ensemble (``nan`` when empty).
    """

    median_log10_fidelity: float
    spread: ConfidenceInterval | None
    num_devices: int
    median_swaps: float

    def ratio_vs(self, baseline: "EnsembleSummary | None") -> float:
        """Median-fidelity ratio against a baseline summary, in log space.

        Delegates to :func:`repro.simulation.esp.fidelity_ratio`, so the
        inf-on-missing/dead-baseline, zero-on-dead-self and overflow
        conventions stay identical to the per-device ratios printed
        alongside; ``nan`` when this ensemble itself is empty.
        """
        if isnan(self.median_log10_fidelity):
            return float("nan")
        if baseline is None or isnan(baseline.median_log10_fidelity):
            return inf
        return fidelity_ratio(
            FidelityScore(self.median_log10_fidelity, 0),
            FidelityScore(baseline.median_log10_fidelity, 0),
        )


def summarise_ensemble(rows: Sequence[dict]) -> EnsembleSummary:
    """Summarise one configuration's per-device score rows.

    ``rows`` are :func:`compile_and_score` results for the same
    (benchmark, routing) on the devices of one top-k ensemble.
    """
    if not rows:
        return EnsembleSummary(
            median_log10_fidelity=float("nan"),
            spread=None,
            num_devices=0,
            median_swaps=float("nan"),
        )
    fidelities = [row["log10_fidelity"] for row in rows]
    # A dead device contributes -inf: the median still orders correctly,
    # but no finite order-statistic spread exists for a mixed ensemble.
    all_finite = all(value > -inf for value in fidelities)
    return EnsembleSummary(
        median_log10_fidelity=midpoint_median(fidelities),
        spread=median_interval(fidelities) if all_finite else None,
        num_devices=len(rows),
        median_swaps=midpoint_median(row["num_swaps"] for row in rows),
    )
