"""Shared architecture-study state for the Fig. 8 / Fig. 9 / Fig. 10 pipelines.

The three evaluation figures of the paper consume the same expensive
intermediate products: fabricated chiplet bins, assembled MCMs and
monolithic Monte-Carlo runs.  :class:`ArchitectureStudy` computes these
lazily and caches them, so the benchmark harness can regenerate individual
figures without repeating the whole pipeline.

The heavy computations live in module-level functions of picklable
arguments (:func:`compute_chiplet_bin`, :func:`compute_mcm_result`,
:func:`compute_monolithic_result`).  Their random streams are keyed on
``(config.seed, stage, parameters)`` — never on execution order — so the
study can fan them out through an :class:`repro.engine.ExecutionEngine`
(see :meth:`ArchitectureStudy.prefetch`) and still produce results
bit-identical to the lazy sequential path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.assembly import (
    AssemblyResult,
    assemble_mcms,
    fabricate_chiplet_bin,
    post_assembly_yield,
    rank_devices,
    ChipletBin,
)
from repro.core.architecture import DEFAULT_TOPOLOGY, get_architecture
from repro.core.chiplet import ChipletDesign, PAPER_CHIPLET_SIZES
from repro.core.fabrication import FabricationModel, SIGMA_LASER_TUNED_GHZ
from repro.core.fidelity import LinkScenario, default_link_scenarios
from repro.core.frequencies import FrequencySpec
from repro.core.mcm import MCMDesign, MAX_SYSTEM_QUBITS
from repro.core.yield_model import YieldResult, simulate_yield_with_devices
from repro.device.device import Device
from repro.device.noise import EmpiricalCXModel
from repro.device.calibration import washington_cx_model
from repro.topology.coupling import CouplingMap

__all__ = [
    "StudyConfig",
    "MonolithicResult",
    "MCMResult",
    "ArchitectureStudy",
    "compute_chiplet_bin",
    "compute_mcm_result",
    "compute_monolithic_result",
]


@dataclass(frozen=True)
class StudyConfig:
    """Parameters of an architecture study.

    Attributes
    ----------
    sigma_ghz:
        Fabrication precision (the paper uses the laser-tuned 0.014 GHz).
    step_ghz:
        Ideal inter-frequency detuning (0.06 GHz maximises yield).
    chiplet_batch_size:
        Fabrication batch per chiplet size (the paper uses 10 000 dies).
    monolithic_batch_size:
        Fabrication batch per monolithic size (the paper uses 10 000 dies).
    max_qubits:
        Largest system size to evaluate.
    seed:
        Master seed; every cached computation derives its own stream.
    topology:
        Registered topology name every device of the study uses
        (heavy-hex, the paper's architecture, by default).
    """

    sigma_ghz: float = SIGMA_LASER_TUNED_GHZ
    step_ghz: float = 0.06
    chiplet_batch_size: int = 10_000
    monolithic_batch_size: int = 10_000
    max_qubits: int = MAX_SYSTEM_QUBITS
    seed: int = 2022
    chiplet_sizes: tuple[int, ...] = PAPER_CHIPLET_SIZES
    topology: str = DEFAULT_TOPOLOGY


@dataclass
class MonolithicResult:
    """Monte-Carlo outcome for one monolithic device size.

    Attributes
    ----------
    num_qubits:
        Device size.
    collision_free_yield:
        Fraction of the batch with no frequency collision.
    yield_result:
        The full Monte-Carlo :class:`~repro.core.yield_model.YieldResult`
        behind that fraction, carrying the binomial confidence interval
        (``ci_low``/``ci_high``) and the sample count.
    eavg:
        Mean (over surviving devices) of the per-device average two-qubit
        infidelity; ``nan`` when the yield is zero.
    representative_device:
        The device whose average infidelity is the median of the surviving
        population (used for application analysis); ``None`` at zero yield.
    """

    num_qubits: int
    collision_free_yield: float
    eavg: float
    representative_device: Device | None
    yield_result: "YieldResult | None" = None


@dataclass
class MCMResult:
    """Assembly outcome for one MCM configuration.

    Attributes
    ----------
    design:
        The MCM design.
    assembly:
        Raw assembly result (assembled modules, utilisation counters).
    post_assembly_yield:
        Yield including chiplet utilisation and bump-bond success.
    post_assembly_yield_100x:
        Same with the bump-bond failure probability amplified 100x
        (the Fig. 8 sensitivity study).
    on_chip_error_sums, link_error_sums:
        Per assembled module (in assembly order, i.e. best chiplets first):
        the sum of intra-chip coupling errors and the sum of inter-chip
        link errors.  Together with ``num_edges`` they let callers compute
        ``E_avg`` under any link-improvement scenario and over any prefix
        of the assembled modules (the paper's scaled-yield comparison).
    num_edges:
        Number of couplings per module.
    base_link_mean:
        Mean link error of the distribution the modules were assembled
        with (the state-of-the-art scenario).
    best_device:
        Device view of the best assembled module (lowest average error);
        ``None`` when no module could be assembled.
    """

    design: MCMDesign
    assembly: AssemblyResult
    post_assembly_yield: float
    post_assembly_yield_100x: float
    on_chip_error_sums: np.ndarray
    link_error_sums: np.ndarray
    num_edges: int
    base_link_mean: float
    best_device: Device | None

    @property
    def num_mcms(self) -> int:
        """Number of assembled modules."""
        return len(self.assembly.mcms)

    def top_devices(self, count: int) -> list[Device]:
        """Device views of the ``count`` lowest-average-error modules.

        The application-evaluation layer scores this ensemble instead of
        just ``best_device``: one device per configuration is a noisy
        (single order statistic) estimator of architecture quality.
        """
        return rank_devices(self.assembly.mcms, count, self.design.name)

    def eavg(self, link_scale: float = 1.0, count: int | None = None) -> float:
        """Average two-qubit infidelity over (a prefix of) the modules.

        Parameters
        ----------
        link_scale:
            Multiplicative factor applied to every link error (1.0 keeps
            the state-of-the-art scenario; the Fig. 9 improved-link
            scenarios use factors < 1).
        count:
            Number of modules, taken from the front of the assembly order
            (best chiplets first), to average over.  ``None`` uses every
            assembled module.
        """
        if self.num_mcms == 0:
            return float("nan")
        if count is None:
            count = self.num_mcms
        count = max(1, min(count, self.num_mcms))
        totals = (
            self.on_chip_error_sums[:count] + link_scale * self.link_error_sums[:count]
        )
        return float(np.mean(totals / self.num_edges))

    def eavg_for_scenario(self, scenario: LinkScenario, count: int | None = None) -> float:
        """``E_avg`` under a named link scenario (see :func:`eavg`)."""
        return self.eavg(
            link_scale=scenario.link_model.mean / self.base_link_mean, count=count
        )


# ---------------------------------------------------------------------- #
# Engine task units (module-level, picklable, execution-order independent)
# ---------------------------------------------------------------------- #
def _study_rng(config: StudyConfig, *key: int) -> np.random.Generator:
    return np.random.default_rng((config.seed, *key))


def compute_chiplet_bin(
    config: StudyConfig, cx_model: EmpiricalCXModel, size: int
) -> ChipletBin:
    """Fabricate and KGD-characterise the chiplet bin for one size.

    The study's rng keys are sigma-independent tuples, so a sigma sweep
    over :class:`StudyConfig` automatically shares fabrication draws
    through the sample bank (common random numbers along the sigma axis).
    """
    spec = FrequencySpec(step_ghz=config.step_ghz)
    design = ChipletDesign.build(size, spec=spec, topology=config.topology)
    return fabricate_chiplet_bin(
        design,
        FabricationModel(sigma_ghz=config.sigma_ghz),
        cx_model,
        batch_size=config.chiplet_batch_size,
        rng=_study_rng(config, 1, size),
        draw_seed=(config.seed, 1, size),
    )


def compute_mcm_result(
    config: StudyConfig,
    chiplet_bin: ChipletBin,
    chiplet_size: int,
    grid: tuple[int, int],
    base_scenario: LinkScenario | None = None,
    chiplet_design: ChipletDesign | None = None,
) -> MCMResult:
    """Assemble one MCM configuration from an already-fabricated bin.

    ``base_scenario`` supplies the link-error model modules are assembled
    with (and the ``base_link_mean`` that later scenario rescaling divides
    by); the study passes its own ``scenarios[0]`` so callers who
    customise that list keep the old behaviour.  ``chiplet_design``
    avoids repeating the lattice search when the caller already holds the
    design for this size.
    """
    if chiplet_design is None:
        chiplet_design = ChipletDesign.build(
            chiplet_size,
            spec=FrequencySpec(step_ghz=config.step_ghz),
            topology=config.topology,
        )
    design = MCMDesign.build(chiplet_design, *grid)
    if base_scenario is None:
        base_scenario = default_link_scenarios()[0]
    assembly = assemble_mcms(
        chiplet_bin,
        design,
        base_scenario.link_model,
        rng=_study_rng(config, 2, chiplet_size, grid[0], grid[1]),
    )

    link_edges = design.link_edges()
    on_chip_sums = []
    link_sums = []
    num_edges = design.coupling_map().num_edges
    for mcm in assembly.mcms:
        on_chip = 0.0
        link = 0.0
        for edge, error in mcm.edge_errors.items():
            if edge in link_edges:
                link += error
            else:
                on_chip += error
        on_chip_sums.append(on_chip)
        link_sums.append(link)

    best_device = None
    if assembly.mcms:
        best = min(assembly.mcms, key=lambda m: m.average_error)
        best_device = best.to_device()

    return MCMResult(
        design=design,
        assembly=assembly,
        post_assembly_yield=post_assembly_yield(assembly, chiplet_bin.batch_size),
        post_assembly_yield_100x=post_assembly_yield(
            assembly, chiplet_bin.batch_size, failure_multiplier=100.0
        ),
        on_chip_error_sums=np.asarray(on_chip_sums, dtype=float),
        link_error_sums=np.asarray(link_sums, dtype=float),
        num_edges=num_edges,
        base_link_mean=base_scenario.link_model.mean,
        best_device=best_device,
    )


def compute_mcm_results(
    config: StudyConfig,
    chiplet_bin: ChipletBin,
    chiplet_size: int,
    grids: tuple[tuple[int, int], ...],
    base_scenario: LinkScenario | None = None,
) -> dict[tuple[int, int], MCMResult]:
    """Assemble every requested grid of one chiplet size in a single task.

    Grouping per size means a (potentially multi-megabyte) chiplet bin is
    pickled to a worker once per size rather than once per grid; each
    grid's random stream is keyed independently, so the results are
    identical to per-grid :func:`compute_mcm_result` calls.
    """
    chiplet_design = ChipletDesign.build(
        chiplet_size,
        spec=FrequencySpec(step_ghz=config.step_ghz),
        topology=config.topology,
    )
    return {
        grid: compute_mcm_result(
            config, chiplet_bin, chiplet_size, grid, base_scenario, chiplet_design
        )
        for grid in grids
    }


def compute_monolithic_result(
    config: StudyConfig, cx_model: EmpiricalCXModel, num_qubits: int
) -> MonolithicResult:
    """Monte-Carlo yield and E_avg for one monolithic device size.

    Like :func:`compute_chiplet_bin`, the sigma-independent rng key means
    sigma sweeps over the study reuse banked fabrication draws.
    """
    rng = _study_rng(config, 3, num_qubits)
    arch = get_architecture(config.topology)
    lattice = arch.lattice(num_qubits)
    allocation = arch.allocate(lattice, spec=arch.spec(step_ghz=config.step_ghz))
    yield_result, survivors = simulate_yield_with_devices(
        allocation,
        FabricationModel(sigma_ghz=config.sigma_ghz),
        batch_size=config.monolithic_batch_size,
        rng=rng,
        draw_seed=(config.seed, 3, num_qubits),
    )

    eavg = float("nan")
    representative = None
    if survivors.shape[0]:
        edges = [(int(u), int(v)) for u, v in lattice.edges]
        edge_u = np.asarray([u for u, _ in edges])
        edge_v = np.asarray([v for _, v in edges])
        detunings = np.abs(survivors[:, edge_u] - survivors[:, edge_v])
        errors = cx_model.sample_many(detunings, rng)
        per_device = errors.mean(axis=1)
        eavg = float(per_device.mean())
        median_index = int(np.argsort(per_device)[len(per_device) // 2])
        edge_errors = {
            edges[col]: float(errors[median_index, col]) for col in range(len(edges))
        }
        representative = Device(
            name=f"monolithic-{num_qubits}",
            coupling=CouplingMap.from_lattice(lattice),
            frequencies_ghz=survivors[median_index],
            labels=allocation.labels.copy(),
            edge_errors=edge_errors,
            metadata={"architecture": "monolithic"},
        )

    return MonolithicResult(
        num_qubits=num_qubits,
        collision_free_yield=yield_result.collision_free_yield,
        eavg=eavg,
        representative_device=representative,
        yield_result=yield_result,
    )


class ArchitectureStudy:
    """Lazily-computed, cached architecture comparison state.

    Parameters
    ----------
    config:
        Study parameters (batch sizes, precision, master seed).
    cx_model:
        Empirical CX error model; the Washington-backed synthetic model at
        the config's seed when omitted.
    engine:
        Optional :class:`repro.engine.ExecutionEngine`.  When present,
        :meth:`prefetch` fans missing bins / assemblies / monolithic runs
        out over worker processes; the lazy accessors below stay available
        and bit-identical either way.
    """

    def __init__(
        self,
        config: StudyConfig | None = None,
        cx_model: EmpiricalCXModel | None = None,
        engine=None,
    ):
        self.config = config or StudyConfig()
        self.spec = get_architecture(self.config.topology).spec(
            step_ghz=self.config.step_ghz
        )
        self.fabrication = FabricationModel(sigma_ghz=self.config.sigma_ghz)
        self.cx_model = cx_model or washington_cx_model(seed=self.config.seed)
        self.engine = engine
        self.scenarios: list[LinkScenario] = default_link_scenarios()
        self._chiplet_designs: dict[int, ChipletDesign] = {}
        self._chiplet_bins: dict[int, ChipletBin] = {}
        self._mcm_results: dict[tuple[int, int, int], MCMResult] = {}
        self._monolithic_results: dict[int, MonolithicResult] = {}

    # ------------------------------------------------------------------ #
    # Random streams
    # ------------------------------------------------------------------ #
    def _rng(self, *key: int) -> np.random.Generator:
        return _study_rng(self.config, *key)

    # ------------------------------------------------------------------ #
    # Chiplets
    # ------------------------------------------------------------------ #
    def chiplet_design(self, size: int) -> ChipletDesign:
        """The (cached) chiplet design for a given size."""
        if size not in self._chiplet_designs:
            self._chiplet_designs[size] = ChipletDesign.build(
                size, spec=self.spec, topology=self.config.topology
            )
        return self._chiplet_designs[size]

    def chiplet_bin(self, size: int) -> ChipletBin:
        """Fabricate and KGD-characterise the chiplet bin for a size."""
        if size not in self._chiplet_bins:
            self._chiplet_bins[size] = compute_chiplet_bin(
                self.config, self.cx_model, size
            )
        return self._chiplet_bins[size]

    # ------------------------------------------------------------------ #
    # MCMs
    # ------------------------------------------------------------------ #
    def mcm_result(self, chiplet_size: int, grid: tuple[int, int]) -> MCMResult:
        """Assemble (and cache) one MCM configuration."""
        key = (chiplet_size, grid[0], grid[1])
        if key not in self._mcm_results:
            self._mcm_results[key] = compute_mcm_result(
                self.config,
                self.chiplet_bin(chiplet_size),
                chiplet_size,
                (grid[0], grid[1]),
                self.scenarios[0],
                self.chiplet_design(chiplet_size),
            )
        return self._mcm_results[key]

    # ------------------------------------------------------------------ #
    # Monolithic devices
    # ------------------------------------------------------------------ #
    def monolithic_result(self, num_qubits: int) -> MonolithicResult:
        """Monte-Carlo yield and E_avg for one monolithic device size."""
        if num_qubits not in self._monolithic_results:
            self._monolithic_results[num_qubits] = compute_monolithic_result(
                self.config, self.cx_model, num_qubits
            )
        return self._monolithic_results[num_qubits]

    # ------------------------------------------------------------------ #
    # Parallel prefetch
    # ------------------------------------------------------------------ #
    def prefetch(
        self,
        chiplet_sizes: tuple[int, ...] | list[int] = (),
        mcm_grids: list[tuple[int, tuple[int, int]]] | None = None,
        monolithic_sizes: tuple[int, ...] | list[int] = (),
    ) -> None:
        """Compute missing study products through the engine, in parallel.

        Two parallel waves: the chiplet bins first, then — concurrently
        with each other — the monolithic Monte-Carlo runs and the MCM
        assemblies that consume the bins (grouped per chiplet size, so
        each bin crosses the process boundary at most once, and keyed on
        the bin's content so repeat runs hit the on-disk cache).  A no-op
        when the study has no engine or nothing is missing; results land
        in the same in-memory caches the lazy accessors use.
        """
        from repro.engine.task import Task

        if self.engine is None:
            return
        mcm_grids = mcm_grids or []

        need_bins = {
            size
            for size in (*chiplet_sizes, *(size for size, _ in mcm_grids))
            if size not in self._chiplet_bins
        }
        need_monos = [
            size
            for size in dict.fromkeys(monolithic_sizes)
            if size not in self._monolithic_results
        ]
        need_mcms = [
            (size, (grid[0], grid[1]))
            for size, grid in dict.fromkeys(
                (size, (grid[0], grid[1])) for size, grid in mcm_grids
            )
            if (size, grid[0], grid[1]) not in self._mcm_results
        ]
        if not (need_bins or need_monos or need_mcms):
            return

        # Wave 1: every bin the assemblies will need.
        bin_sizes = sorted(need_bins)
        wave1 = [
            Task(
                name="study.chiplet_bin",
                fn=compute_chiplet_bin,
                params=dict(config=self.config, cx_model=self.cx_model, size=size),
            )
            for size in bin_sizes
        ]
        for size, bin_ in zip(bin_sizes, self.engine.run_tasks(wave1)):
            self._chiplet_bins[size] = bin_

        # Wave 2: monolithic Monte-Carlo runs (independent of the bins)
        # together with the assemblies — one task per chiplet size
        # covering all of its grids.  Each bin travels in the params, so
        # the cache key is content-addressed on it and repeat runs skip
        # the Monte-Carlo.
        grids_by_size: dict[int, list[tuple[int, int]]] = {}
        for size, grid in need_mcms:
            grids_by_size.setdefault(size, []).append(grid)
        mcm_sizes = list(grids_by_size)
        wave2 = [
            Task(
                name="study.monolithic",
                fn=compute_monolithic_result,
                params=dict(
                    config=self.config, cx_model=self.cx_model, num_qubits=size
                ),
            )
            for size in need_monos
        ] + [
            Task(
                name="study.mcm",
                fn=compute_mcm_results,
                params=dict(
                    config=self.config,
                    chiplet_bin=self._chiplet_bins[size],
                    chiplet_size=size,
                    grids=tuple(grids_by_size[size]),
                    base_scenario=self.scenarios[0],
                ),
            )
            for size in mcm_sizes
        ]
        results = self.engine.run_tasks(wave2)
        for size, mono in zip(need_monos, results[: len(need_monos)]):
            self._monolithic_results[size] = mono
        for size, by_grid in zip(mcm_sizes, results[len(need_monos) :]):
            for grid, result in by_grid.items():
                self._mcm_results[(size, grid[0], grid[1])] = result
