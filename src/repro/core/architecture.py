"""The architecture registry: topology name -> (lattice factory, plan).

This is the seam that makes the pipeline topology-pluggable.  An
:class:`Architecture` pairs a lattice factory (an exact-qubit-count
builder satisfying :class:`repro.topology.base.Lattice`) with the
:class:`repro.core.frequencies.FrequencyPlan` that keeps ideal devices
of that topology collision-free.  Every layer that used to hardwire
heavy-hex — chiplet design, the yield Monte-Carlo, MCM assembly inputs,
calibration synthesis, the analysis drivers and the CLI — now resolves
its topology through :func:`get_architecture`, with ``"heavy-hex"`` as
the default, so the paper's numbers are bit-for-bit unchanged.

Adding a topology is one registration::

    ARCHITECTURES.register(Architecture(
        name="kagome",
        description="corner-sharing triangles, degree 4",
        lattice_factory=kagome_by_qubit_count,
        plan=KagomeSevenFrequencyPlan(),
        max_degree=4,
    ))

after which ``python -m repro run fig4 --topology kagome``, chiplet /
MCM construction, the conformance test suite and the engine's cache
keys all pick it up without further changes.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable

from repro.core.frequencies import (
    FrequencyAllocation,
    FrequencyPlan,
    FrequencySpec,
    HeavyHexThreeFrequencyPlan,
    RingThreeFrequencyPlan,
    SquareFiveFrequencyPlan,
)
from repro.topology.base import Lattice
from repro.topology.heavy_hex import heavy_hex_by_qubit_count
from repro.topology.ring import ring_by_qubit_count
from repro.topology.square import square_by_qubit_count

__all__ = [
    "Architecture",
    "ArchitectureRegistry",
    "ARCHITECTURES",
    "ARCHITECTURE_CACHE_MAXSIZE",
    "DEFAULT_TOPOLOGY",
    "clear_architecture_caches",
    "get_architecture",
]

#: The paper's topology; every entry point defaults to it.
DEFAULT_TOPOLOGY = "heavy-hex"

#: Distinct memoised lattices / allocations kept alive at once.  Sweeps
#: revisit a handful of (topology, qubit-count) points thousands of
#: times across chunk tasks; 32 of each bounds memory while covering
#: every sweep in the repo with room to spare.
ARCHITECTURE_CACHE_MAXSIZE = 32

# Module-level memo for lattice builds and frequency allocations.  Both
# are deterministic pure functions — a lattice of (factory, qubit count,
# name) and an allocation of (plan, spec, lattice content) — and both
# results are treated as immutable by every consumer, so chunk tasks
# that used to rebuild identical ideal-frequency allocations per task
# now share one instance.  Lattice keys hold the factory *object* and
# allocation keys the frozen plan dataclass, so the keys themselves pin
# the referenced callables alive (no id-reuse hazard), and allocation
# keys fingerprint the lattice by content (sites + edges tuples), so
# pickled lattice copies inside engine workers still hit.
_LATTICE_CACHE: OrderedDict[tuple, Lattice] = OrderedDict()
_ALLOCATION_CACHE: OrderedDict[tuple, FrequencyAllocation] = OrderedDict()
_MEMO_LOCK = threading.Lock()


def _memo_get(cache: OrderedDict, key: tuple, build: Callable):
    with _MEMO_LOCK:
        value = cache.get(key)
        if value is not None:
            cache.move_to_end(key)
            return value
    # Build outside the lock: lattice/allocation construction is pure,
    # so a rare duplicate build under contention is only wasted work.
    value = build()
    with _MEMO_LOCK:
        cache[key] = value
        while len(cache) > ARCHITECTURE_CACHE_MAXSIZE:
            cache.popitem(last=False)
    return value


def clear_architecture_caches() -> None:
    """Drop every memoised lattice and allocation (test isolation hook)."""
    with _MEMO_LOCK:
        _LATTICE_CACHE.clear()
        _ALLOCATION_CACHE.clear()


@dataclass(frozen=True)
class Architecture:
    """One registered topology scenario.

    Attributes
    ----------
    name:
        Registry key (``"heavy-hex"``, ``"square"``, ``"ring"``, ...).
    description:
        One-line summary shown by ``python -m repro list``.
    lattice_factory:
        ``factory(num_qubits, name=None) -> Lattice`` building a
        connected lattice with an exact qubit count.
    plan:
        The :class:`FrequencyPlan` keeping ideal devices collision-free.
    max_degree:
        Upper bound on qubit degree the factory guarantees (a
        conformance-suite invariant, and a quick density indicator).
    """

    name: str
    description: str
    lattice_factory: Callable[..., Lattice] = field(compare=False)
    plan: FrequencyPlan = field(compare=False)
    max_degree: int = 3

    def lattice(self, num_qubits: int, name: str | None = None) -> Lattice:
        """Build (or reuse) a lattice of this topology with ``num_qubits``.

        Factories are deterministic, so repeated builds of the same
        (topology, qubit count, name) return one shared, never-mutated
        instance from the module memo.
        """
        return _memo_get(
            _LATTICE_CACHE,
            (self.lattice_factory, num_qubits, name),
            lambda: self.lattice_factory(num_qubits, name=name),
        )

    def spec(self, step_ghz: float | None = None) -> FrequencySpec:
        """A :class:`FrequencySpec` sized for this architecture's plan."""
        return self.plan.spec(step_ghz=step_ghz)

    def allocate(
        self, lattice: Lattice, spec: FrequencySpec | None = None
    ) -> FrequencyAllocation:
        """Label a lattice of this topology under its frequency plan.

        Allocations are memoised on (plan, spec, lattice content) —
        plans are pure functions of the lattice's sites/edges, and
        every consumer treats :class:`FrequencyAllocation` arrays as
        read-only — so yield chunk tasks that previously re-allocated
        an identical lattice per chunk now share one instance.  Keying
        by content (not lattice identity) lets pickled lattice copies
        in engine workers hit too.
        """
        key = (self.plan, spec, lattice.name, tuple(lattice.sites), tuple(lattice.edges))
        return _memo_get(
            _ALLOCATION_CACHE, key, lambda: self.plan.allocate(lattice, spec=spec)
        )


class ArchitectureRegistry:
    """Mutable name -> :class:`Architecture` mapping."""

    def __init__(self) -> None:
        self._architectures: dict[str, Architecture] = {}

    def register(self, architecture: Architecture) -> Architecture:
        """Register an architecture; raises on duplicate names."""
        if architecture.name in self._architectures:
            raise ValueError(f"topology {architecture.name!r} already registered")
        self._architectures[architecture.name] = architecture
        return architecture

    def get(self, name: str) -> Architecture:
        """Resolve a topology name; raises ``KeyError`` with the known set."""
        if name not in self._architectures:
            known = ", ".join(sorted(self._architectures))
            raise KeyError(f"unknown topology {name!r}; known: {known}")
        return self._architectures[name]

    def names(self) -> list[str]:
        """Registered topology names, in registration order."""
        return list(self._architectures)

    def specs(self) -> list[Architecture]:
        """Every registered architecture, in registration order."""
        return list(self._architectures.values())

    def __contains__(self, name: str) -> bool:
        return name in self._architectures

    def __len__(self) -> int:
        return len(self._architectures)


ARCHITECTURES = ArchitectureRegistry()


def get_architecture(name: str | None = None) -> Architecture:
    """Resolve a topology name (``None`` -> the heavy-hex default)."""
    return ARCHITECTURES.get(name or DEFAULT_TOPOLOGY)


ARCHITECTURES.register(
    Architecture(
        name=DEFAULT_TOPOLOGY,
        description="heavy-hexagon lattice, 3-frequency plan (the paper's design)",
        lattice_factory=heavy_hex_by_qubit_count,
        plan=HeavyHexThreeFrequencyPlan(),
        max_degree=3,
    )
)
ARCHITECTURES.register(
    Architecture(
        name="square",
        description="square grid, 5-frequency distance-2 colouring (degree 4)",
        lattice_factory=square_by_qubit_count,
        plan=SquareFiveFrequencyPlan(),
        max_degree=4,
    )
)
ARCHITECTURES.register(
    Architecture(
        name="ring",
        description="linear chain, period-3 3-frequency plan (degree 2)",
        lattice_factory=ring_by_qubit_count,
        plan=RingThreeFrequencyPlan(),
        max_degree=2,
    )
)
