"""The architecture registry: topology name -> (lattice factory, plan).

This is the seam that makes the pipeline topology-pluggable.  An
:class:`Architecture` pairs a lattice factory (an exact-qubit-count
builder satisfying :class:`repro.topology.base.Lattice`) with the
:class:`repro.core.frequencies.FrequencyPlan` that keeps ideal devices
of that topology collision-free.  Every layer that used to hardwire
heavy-hex — chiplet design, the yield Monte-Carlo, MCM assembly inputs,
calibration synthesis, the analysis drivers and the CLI — now resolves
its topology through :func:`get_architecture`, with ``"heavy-hex"`` as
the default, so the paper's numbers are bit-for-bit unchanged.

Adding a topology is one registration::

    ARCHITECTURES.register(Architecture(
        name="kagome",
        description="corner-sharing triangles, degree 4",
        lattice_factory=kagome_by_qubit_count,
        plan=KagomeSevenFrequencyPlan(),
        max_degree=4,
    ))

after which ``python -m repro run fig4 --topology kagome``, chiplet /
MCM construction, the conformance test suite and the engine's cache
keys all pick it up without further changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.frequencies import (
    FrequencyAllocation,
    FrequencyPlan,
    FrequencySpec,
    HeavyHexThreeFrequencyPlan,
    RingThreeFrequencyPlan,
    SquareFiveFrequencyPlan,
)
from repro.topology.base import Lattice
from repro.topology.heavy_hex import heavy_hex_by_qubit_count
from repro.topology.ring import ring_by_qubit_count
from repro.topology.square import square_by_qubit_count

__all__ = [
    "Architecture",
    "ArchitectureRegistry",
    "ARCHITECTURES",
    "DEFAULT_TOPOLOGY",
    "get_architecture",
]

#: The paper's topology; every entry point defaults to it.
DEFAULT_TOPOLOGY = "heavy-hex"


@dataclass(frozen=True)
class Architecture:
    """One registered topology scenario.

    Attributes
    ----------
    name:
        Registry key (``"heavy-hex"``, ``"square"``, ``"ring"``, ...).
    description:
        One-line summary shown by ``python -m repro list``.
    lattice_factory:
        ``factory(num_qubits, name=None) -> Lattice`` building a
        connected lattice with an exact qubit count.
    plan:
        The :class:`FrequencyPlan` keeping ideal devices collision-free.
    max_degree:
        Upper bound on qubit degree the factory guarantees (a
        conformance-suite invariant, and a quick density indicator).
    """

    name: str
    description: str
    lattice_factory: Callable[..., Lattice] = field(compare=False)
    plan: FrequencyPlan = field(compare=False)
    max_degree: int = 3

    def lattice(self, num_qubits: int, name: str | None = None) -> Lattice:
        """Build a lattice of this topology with exactly ``num_qubits``."""
        return self.lattice_factory(num_qubits, name=name)

    def spec(self, step_ghz: float | None = None) -> FrequencySpec:
        """A :class:`FrequencySpec` sized for this architecture's plan."""
        return self.plan.spec(step_ghz=step_ghz)

    def allocate(
        self, lattice: Lattice, spec: FrequencySpec | None = None
    ) -> FrequencyAllocation:
        """Label a lattice of this topology under its frequency plan."""
        return self.plan.allocate(lattice, spec=spec)


class ArchitectureRegistry:
    """Mutable name -> :class:`Architecture` mapping."""

    def __init__(self) -> None:
        self._architectures: dict[str, Architecture] = {}

    def register(self, architecture: Architecture) -> Architecture:
        """Register an architecture; raises on duplicate names."""
        if architecture.name in self._architectures:
            raise ValueError(f"topology {architecture.name!r} already registered")
        self._architectures[architecture.name] = architecture
        return architecture

    def get(self, name: str) -> Architecture:
        """Resolve a topology name; raises ``KeyError`` with the known set."""
        if name not in self._architectures:
            known = ", ".join(sorted(self._architectures))
            raise KeyError(f"unknown topology {name!r}; known: {known}")
        return self._architectures[name]

    def names(self) -> list[str]:
        """Registered topology names, in registration order."""
        return list(self._architectures)

    def specs(self) -> list[Architecture]:
        """Every registered architecture, in registration order."""
        return list(self._architectures.values())

    def __contains__(self, name: str) -> bool:
        return name in self._architectures

    def __len__(self) -> int:
        return len(self._architectures)


ARCHITECTURES = ArchitectureRegistry()


def get_architecture(name: str | None = None) -> Architecture:
    """Resolve a topology name (``None`` -> the heavy-hex default)."""
    return ARCHITECTURES.get(name or DEFAULT_TOPOLOGY)


ARCHITECTURES.register(
    Architecture(
        name=DEFAULT_TOPOLOGY,
        description="heavy-hexagon lattice, 3-frequency plan (the paper's design)",
        lattice_factory=heavy_hex_by_qubit_count,
        plan=HeavyHexThreeFrequencyPlan(),
        max_degree=3,
    )
)
ARCHITECTURES.register(
    Architecture(
        name="square",
        description="square grid, 5-frequency distance-2 colouring (degree 4)",
        lattice_factory=square_by_qubit_count,
        plan=SquareFiveFrequencyPlan(),
        max_degree=4,
    )
)
ARCHITECTURES.register(
    Architecture(
        name="ring",
        description="linear chain, period-3 3-frequency plan (degree 2)",
        lattice_factory=ring_by_qubit_count,
        plan=RingThreeFrequencyPlan(),
        max_degree=2,
    )
)
