"""Multi-chip module (MCM) topologies.

An :class:`MCMDesign` arranges ``k x m`` copies of one chiplet design on an
interposer and wires adjacent chiplets together with inter-chip links.  The
chiplet can be of any registered topology (heavy-hex, square, ring, ...);
link placement works purely from the chiplet's boundary sites and frequency
labels, following the paper's requirements:

* links preserve the sparse-coupling character of the lattice — they are
  placed every other boundary row horizontally and every fourth column
  vertically, and never raise a qubit's link count above one;
* the two endpoints of a link always carry different frequency labels and
  the higher-frequency endpoint acts as the control of the inter-chip
  Cross-Resonance gate;
* attaching a link never gives a control qubit two targets of the same
  label, so the *ideal* MCM frequency plan stays collision-free.

The module also provides the paper's MCM dimension-selection rule
(Section VII-B): for every chiplet count that fits in a 500-qubit budget,
keep the most "square" ``k x m`` factorisation, which yielded the 102 MCM
configurations evaluated in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.chiplet import ChipletDesign
from repro.core.collisions import find_collisions
from repro.core.frequencies import FrequencyAllocation, allocation_from_labels
from repro.topology.coupling import CouplingMap

__all__ = [
    "InterChipLink",
    "MCMDesign",
    "mcm_dimensions_for",
    "square_dimensions_for",
    "MAX_SYSTEM_QUBITS",
]

#: Largest system size (qubits) considered by the paper's evaluation.
MAX_SYSTEM_QUBITS = 500

#: Stride (in dense rows) between horizontal inter-chip links.
HORIZONTAL_LINK_STRIDE = 2

#: Stride (in columns) between vertical inter-chip links.
VERTICAL_LINK_STRIDE = 4


@dataclass(frozen=True)
class InterChipLink:
    """One inter-chip coupling between two chiplets of an MCM.

    Attributes
    ----------
    chip_a, chip_b:
        Flat chiplet indices (row-major over the MCM grid).
    local_a, local_b:
        Qubit indices *within* each chiplet.
    global_a, global_b:
        Qubit indices within the assembled MCM.
    """

    chip_a: int
    local_a: int
    global_a: int
    chip_b: int
    local_b: int
    global_b: int

    @property
    def edge(self) -> tuple[int, int]:
        """Global coupling as a ``(low, high)`` pair."""
        return (min(self.global_a, self.global_b), max(self.global_a, self.global_b))


@dataclass
class MCMDesign:
    """A ``k x m`` grid of identical chiplets joined by inter-chip links.

    Attributes
    ----------
    chiplet:
        The chiplet design replicated across the module.
    grid_rows, grid_cols:
        MCM dimensions (``k`` and ``m`` in the paper's notation).
    links:
        Inter-chip links added by the builder.
    allocation:
        Ideal frequency plan of the full MCM.
    """

    chiplet: ChipletDesign
    grid_rows: int
    grid_cols: int
    links: list[InterChipLink]
    allocation: FrequencyAllocation
    name: str = ""
    _coupling: CouplingMap | None = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(cls, chiplet: ChipletDesign, grid_rows: int, grid_cols: int) -> "MCMDesign":
        """Arrange ``grid_rows x grid_cols`` chiplets and wire their links."""
        if grid_rows < 1 or grid_cols < 1:
            raise ValueError("MCM dimensions must be positive")
        if grid_rows * grid_cols < 2:
            raise ValueError("an MCM needs at least two chiplets")

        builder = _LinkBuilder(chiplet, grid_rows, grid_cols)
        links = builder.build_links()

        qc = chiplet.num_qubits
        num_chips = grid_rows * grid_cols
        labels = np.tile(chiplet.labels, num_chips)
        edges: list[tuple[int, int]] = []
        for chip in range(num_chips):
            offset = chip * qc
            edges.extend((u + offset, v + offset) for u, v in chiplet.edges())
        edges.extend(link.edge for link in links)

        allocation = allocation_from_labels(labels, edges, spec=chiplet.allocation.spec)
        name = f"mcm-{grid_rows}x{grid_cols}-{chiplet.name}"
        design = cls(
            chiplet=chiplet,
            grid_rows=grid_rows,
            grid_cols=grid_cols,
            links=links,
            allocation=allocation,
            name=name,
        )
        report = find_collisions(allocation, allocation.ideal_frequencies)
        if not report.is_collision_free:
            raise ValueError(
                f"MCM design {name} has ideal-frequency collisions: "
                f"{report.counts_by_type()}"
            )
        if not design.coupling_map().is_connected():
            raise ValueError(f"MCM design {name} is not connected")
        return design

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_chips(self) -> int:
        """Number of chiplets in the module."""
        return self.grid_rows * self.grid_cols

    @property
    def num_qubits(self) -> int:
        """Total number of qubits in the module."""
        return self.num_chips * self.chiplet.num_qubits

    @property
    def num_links(self) -> int:
        """Number of inter-chip couplings."""
        return len(self.links)

    @property
    def num_link_qubits(self) -> int:
        """Number of qubits participating in inter-chip links (paper's ``L``)."""
        qubits = set()
        for link in self.links:
            qubits.add(link.global_a)
            qubits.add(link.global_b)
        return len(qubits)

    def link_edges(self) -> frozenset[tuple[int, int]]:
        """Global link couplings."""
        return frozenset(link.edge for link in self.links)

    def chip_offset(self, chip_index: int) -> int:
        """Global index of the first qubit of a chiplet slot."""
        if not 0 <= chip_index < self.num_chips:
            raise IndexError(f"chip index {chip_index} out of range")
        return chip_index * self.chiplet.num_qubits

    def chip_slice(self, chip_index: int) -> slice:
        """Slice of global qubit indices owned by a chiplet slot."""
        offset = self.chip_offset(chip_index)
        return slice(offset, offset + self.chiplet.num_qubits)

    def coupling_map(self) -> CouplingMap:
        """Coupling map of the full MCM, with links flagged."""
        if self._coupling is None:
            edges = [
                (int(min(c, t)), int(max(c, t)))
                for c, t in self.allocation.directed_edges
            ]
            self._coupling = CouplingMap(
                num_qubits=self.num_qubits,
                edges=edges,
                link_edges=self.link_edges(),
            )
        return self._coupling

    def assemble_frequencies(self, per_chip_frequencies: list[np.ndarray]) -> np.ndarray:
        """Concatenate per-chiplet frequency vectors into an MCM-wide vector.

        Parameters
        ----------
        per_chip_frequencies:
            One array of shape ``(chiplet.num_qubits,)`` per chiplet slot, in
            row-major slot order.
        """
        if len(per_chip_frequencies) != self.num_chips:
            raise ValueError(
                f"expected {self.num_chips} frequency vectors, got {len(per_chip_frequencies)}"
            )
        qc = self.chiplet.num_qubits
        for vector in per_chip_frequencies:
            if np.shape(vector) != (qc,):
                raise ValueError("per-chiplet frequency vector has the wrong shape")
        return np.concatenate([np.asarray(v, dtype=float) for v in per_chip_frequencies])


class _LinkBuilder:
    """Internal helper that places inter-chip links for one MCM design."""

    def __init__(self, chiplet: ChipletDesign, grid_rows: int, grid_cols: int):
        self.chiplet = chiplet
        self.grid_rows = grid_rows
        self.grid_cols = grid_cols
        self.labels = chiplet.labels
        # Labels of the targets each (local) control qubit already drives.
        self.base_target_labels = chiplet.control_target_labels()
        # Per chip: extra target labels gained through accepted links.
        self.extra_target_labels: dict[tuple[int, int], list[int]] = {}
        self.used_link_qubits: set[tuple[int, int]] = set()
        self.links: list[InterChipLink] = []

    def chip_index(self, row: int, col: int) -> int:
        return row * self.grid_cols + col

    def _pair_is_valid(
        self, chip_a: int, qa: int, chip_b: int, qb: int, allow_reuse: bool = False
    ) -> bool:
        la = int(self.labels[qa])
        lb = int(self.labels[qb])
        if la == lb:
            return False
        if not allow_reuse and (
            (chip_a, qa) in self.used_link_qubits or (chip_b, qb) in self.used_link_qubits
        ):
            return False
        # The higher-label endpoint is the control of the inter-chip gate.
        if la > lb:
            control_chip, control, target_label = chip_a, qa, lb
        else:
            control_chip, control, target_label = chip_b, qb, la
        existing = list(self.base_target_labels.get(control, []))
        existing.extend(self.extra_target_labels.get((control_chip, control), []))
        return target_label not in existing

    def _accept(self, chip_a: int, qa: int, chip_b: int, qb: int) -> None:
        qc = self.chiplet.num_qubits
        la = int(self.labels[qa])
        lb = int(self.labels[qb])
        if la > lb:
            control_chip, control, target_label = chip_a, qa, lb
        else:
            control_chip, control, target_label = chip_b, qb, la
        self.extra_target_labels.setdefault((control_chip, control), []).append(target_label)
        self.used_link_qubits.add((chip_a, qa))
        self.used_link_qubits.add((chip_b, qb))
        self.links.append(
            InterChipLink(
                chip_a=chip_a,
                local_a=qa,
                global_a=chip_a * qc + qa,
                chip_b=chip_b,
                local_b=qb,
                global_b=chip_b * qc + qb,
            )
        )

    def _place_links(
        self,
        chip_a: int,
        boundary_a: dict[int, int],
        chip_b: int,
        boundary_b: dict[int, int],
        stride: int,
        offsets: tuple[int, ...],
    ) -> int:
        accepted = 0
        keys = sorted(boundary_a)
        for position, key in enumerate(keys):
            if position % stride:
                continue
            qa = boundary_a[key]
            for offset in offsets:
                partner_key = key + offset
                if partner_key not in boundary_b:
                    continue
                qb = boundary_b[partner_key]
                if self._pair_is_valid(chip_a, qa, chip_b, qb):
                    self._accept(chip_a, qa, chip_b, qb)
                    accepted += 1
                    break
        if accepted == 0:
            accepted = self._place_fallback_link(chip_a, boundary_a, chip_b, boundary_b)
        return accepted

    def _place_fallback_link(
        self,
        chip_a: int,
        boundary_a: dict[int, int],
        chip_b: int,
        boundary_b: dict[int, int],
    ) -> int:
        """Guarantee at least one link between an adjacent chiplet pair.

        Small chiplets offer few boundary sites and the sparse pass can fail
        when its preferred sites were consumed by a neighbouring boundary.
        A first exhaustive scan keeps the one-link-per-qubit rule; if that
        also fails (tiny chiplets in dense grids), qubit reuse is allowed as
        a last resort — the frequency-label constraints are still enforced,
        so the ideal plan remains collision-free.
        """
        for allow_reuse in (False, True):
            for key in sorted(boundary_a):
                qa = boundary_a[key]
                for partner_key in sorted(boundary_b, key=lambda k: (abs(k - key), k)):
                    qb = boundary_b[partner_key]
                    if self._pair_is_valid(chip_a, qa, chip_b, qb, allow_reuse=allow_reuse):
                        self._accept(chip_a, qa, chip_b, qb)
                        return 1
        return 0

    def build_links(self) -> list[InterChipLink]:
        """Place all horizontal and vertical inter-chip links."""
        right = self.chiplet.boundary_qubits("right")
        left = self.chiplet.boundary_qubits("left")
        bottom = self.chiplet.boundary_qubits("bottom")
        top = self.chiplet.boundary_qubits("top")

        for row in range(self.grid_rows):
            for col in range(self.grid_cols - 1):
                self._place_links(
                    self.chip_index(row, col),
                    right,
                    self.chip_index(row, col + 1),
                    left,
                    stride=HORIZONTAL_LINK_STRIDE,
                    offsets=(0, 1, -1),
                )
        for row in range(self.grid_rows - 1):
            for col in range(self.grid_cols):
                self._place_links(
                    self.chip_index(row, col),
                    bottom,
                    self.chip_index(row + 1, col),
                    top,
                    stride=VERTICAL_LINK_STRIDE,
                    offsets=(0, 2, -2, 1),
                )
        return self.links


def _most_square_factorisation(num_chips: int) -> tuple[int, int]:
    """The ``k x m`` factorisation of ``num_chips`` with the smallest aspect."""
    best: tuple[int, int] | None = None
    for k in range(1, int(np.sqrt(num_chips)) + 1):
        if num_chips % k == 0:
            best = (k, num_chips // k)
    assert best is not None
    return best


def mcm_dimensions_for(
    chiplet_size: int, max_qubits: int = MAX_SYSTEM_QUBITS
) -> list[tuple[int, int]]:
    """MCM dimensions evaluated for one chiplet size (paper Section VII-B).

    One configuration per distinct chiplet count from 2 up to
    ``max_qubits // chiplet_size``, keeping the most square ``k x m``
    factorisation of each count.  Across the paper's nine chiplet sizes this
    rule produces the 102 evaluated MCMs.
    """
    if chiplet_size <= 0:
        raise ValueError("chiplet_size must be positive")
    dimensions = []
    for num_chips in range(2, max_qubits // chiplet_size + 1):
        dimensions.append(_most_square_factorisation(num_chips))
    return dimensions


def square_dimensions_for(
    chiplet_size: int, max_qubits: int = MAX_SYSTEM_QUBITS
) -> list[tuple[int, int]]:
    """Square (``n x n``) MCM dimensions within the qubit budget (Fig. 9)."""
    dimensions = []
    n = 2
    while n * n * chiplet_size <= max_qubits:
        dimensions.append((n, n))
        n += 1
    return dimensions
