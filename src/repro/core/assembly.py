"""Known-good-die binning and MCM assembly (paper Sections V-D, VII-B).

The assembly pipeline is:

1. *Fabricate* a batch of chiplets (Monte-Carlo frequency sampling), keep
   only the collision-free ones, and characterise each survivor's two-qubit
   gate errors from the empirical detuning-binned model — this is the
   known-good-die (KGD) step.  When a :class:`repro.tuning.TuningOptions`
   is supplied, collided dies pass through the post-fabrication repair
   stage first, and the dies the tuner recovers join the bin flagged as
   ``repaired`` (counted separately all the way to
   :class:`repro.core.output_model.FabricationOutput`).
2. *Sort* the collision-free bin by average error so the best chiplets are
   consumed first ("speed binning").
3. *Stitch* chiplets into MCMs greedily: take the next ``k*m`` chiplets,
   test the assembled module for frequency collisions across the
   inter-chip links, and reshuffle the placement (up to 100 permutations,
   the paper's time-out) when a collision is found.  If no collision-free
   placement exists the leading chiplet is set aside and assembly continues
   with the next subset.
4. *Account for assembly losses*: every linked qubit requires 25 C4 bump
   bonds, each succeeding with probability ``s_l`` (silicon interposer
   defect rates), so the post-assembly yield is the chiplet utilisation
   scaled by ``(s_l ** 25) ** L``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.chiplet import ChipletDesign
from repro.core.collisions import CollisionThresholds, collision_free_mask
from repro.core.fabrication import FabricationModel
from repro.core.mcm import MCMDesign
from repro.device.device import Device
from repro.device.noise import EmpiricalCXModel, LinkErrorModel
from repro.tuning import TuningOptions, repair_batch

__all__ = [
    "FabricatedChiplet",
    "ChipletBin",
    "AssembledMCM",
    "AssemblyResult",
    "fabricate_chiplet_bin",
    "assemble_mcms",
    "rank_devices",
    "post_assembly_yield",
    "bump_bond_success_probability",
    "C4_BUMP_SUCCESS_PROBABILITY",
    "BUMPS_PER_LINK_QUBIT",
    "DEFAULT_MAX_RESHUFFLES",
]

#: Success probability of a single C4 bump bond on a passive interposer.
C4_BUMP_SUCCESS_PROBABILITY = 0.99999960642

#: Number of bump bonds required per inter-chip linked qubit.
BUMPS_PER_LINK_QUBIT = 25

#: Placement-reshuffle time-out used during MCM stitching.
DEFAULT_MAX_RESHUFFLES = 100


@dataclass
class FabricatedChiplet:
    """One collision-free chiplet out of a fabrication batch.

    Attributes
    ----------
    frequencies_ghz:
        Actual qubit frequencies of this die.
    edge_errors:
        KGD-characterised two-qubit infidelity per on-chip coupling
        (local qubit indices).
    repaired:
        True when the die is collision-free only because the
        post-fabrication tuner repaired it (``compare=False`` so the
        flag stays out of golden summaries and cache identities).
    tuned_qubits:
        Local indices of the qubits the tuner shifted on this die
        (empty for as-fabricated survivors).
    """

    frequencies_ghz: np.ndarray
    edge_errors: dict[tuple[int, int], float]
    repaired: bool = field(default=False, compare=False)
    tuned_qubits: tuple[int, ...] = field(default=(), compare=False)
    average_error_ghz: float | None = field(default=None, compare=False)

    @property
    def average_error(self) -> float:
        """Average on-chip two-qubit infidelity (used for binning).

        ``fabricate_chiplet_bin`` precomputes this for the whole bin in
        one contiguous ``mean(axis=1)`` (bit-identical to averaging the
        dict values per die); directly-constructed chiplets fall back to
        the per-die reduction.
        """
        if self.average_error_ghz is not None:
            return self.average_error_ghz
        return float(np.mean(list(self.edge_errors.values())))


@dataclass
class ChipletBin:
    """The sorted, collision-free chiplet bin produced by KGD testing.

    Attributes
    ----------
    design:
        The chiplet design every die implements.
    chiplets:
        Collision-free dies sorted by ascending average error.
    batch_size:
        Size of the original fabrication batch.
    num_repaired:
        Dies in the bin that exist only thanks to post-fabrication
        repair (0 for untuned bins; ``compare=False`` keeps it out of
        golden summaries and cache identities).
    """

    design: ChipletDesign
    chiplets: list[FabricatedChiplet]
    batch_size: int
    num_repaired: int = field(default=0, compare=False)

    @property
    def num_collision_free(self) -> int:
        """Number of dies that survived collision screening."""
        return len(self.chiplets)

    @property
    def collision_free_yield(self) -> float:
        """Fraction of the batch that is collision-free (repaired included)."""
        return self.num_collision_free / self.batch_size

    @property
    def as_fab_yield(self) -> float:
        """Fraction of the batch collision-free without any repair."""
        return (self.num_collision_free - self.num_repaired) / self.batch_size


@dataclass
class AssembledMCM:
    """A complete, collision-free multi-chip module.

    Attributes
    ----------
    design:
        The MCM design (grid + links) the module implements.
    frequencies_ghz:
        Assembled per-qubit frequencies (global MCM indices).
    edge_errors:
        Two-qubit infidelity for every coupling, including links.
    num_repaired_chiplets:
        How many of the module's chiplets were post-fabrication repairs
        (0 for untuned pipelines; ``compare=False``, see
        :class:`FabricatedChiplet`).
    tuned_qubits:
        Global MCM indices of the qubits the tuner shifted across the
        module's chiplets (exported into ``Device`` metadata, where
        ``Device.qubit(i).tuned`` picks it up).
    """

    design: MCMDesign
    frequencies_ghz: np.ndarray
    edge_errors: dict[tuple[int, int], float]
    num_repaired_chiplets: int = field(default=0, compare=False)
    tuned_qubits: tuple[int, ...] = field(default=(), compare=False)

    @property
    def average_error(self) -> float:
        """Average two-qubit infidelity over all couplings (``E_avg``)."""
        return float(np.mean(list(self.edge_errors.values())))

    def to_device(self, name: str | None = None) -> Device:
        """Convert the assembled module into a :class:`Device`."""
        return Device(
            name=name or self.design.name,
            coupling=self.design.coupling_map(),
            frequencies_ghz=self.frequencies_ghz,
            labels=self.design.allocation.labels.copy(),
            edge_errors=dict(self.edge_errors),
            metadata={
                "chiplet_size": self.design.chiplet.num_qubits,
                "grid": (self.design.grid_rows, self.design.grid_cols),
                "num_links": self.design.num_links,
                "repaired_chiplets": self.num_repaired_chiplets,
                "tuned_qubits": self.tuned_qubits,
            },
        )


def rank_devices(
    mcms: "list[AssembledMCM]", count: int, name_prefix: str
) -> list[Device]:
    """Device views of the ``count`` lowest-average-error modules.

    The application-evaluation layer scores this top-k ensemble instead
    of a single best device: one device per configuration is a noisy
    (single order statistic) estimator of architecture quality.  Shared
    by :meth:`repro.analysis.study.MCMResult.top_devices` and the
    appsweep device-build task so the ranking rule lives in one place.
    """
    ranked = sorted(mcms, key=lambda m: m.average_error)[:count]
    return [
        mcm.to_device(name=f"{name_prefix}-rank{rank}")
        for rank, mcm in enumerate(ranked)
    ]


@dataclass
class AssemblyResult:
    """Outcome of assembling one MCM configuration from a chiplet bin."""

    design: MCMDesign
    mcms: list[AssembledMCM] = field(default_factory=list)
    chiplets_used: int = 0
    chiplets_set_aside: int = 0
    reshuffles: int = 0
    repaired_chiplets_used: int = field(default=0, compare=False)

    @property
    def num_mcms(self) -> int:
        """Number of complete, collision-free MCMs assembled."""
        return len(self.mcms)


def fabricate_chiplet_bin(
    design: ChipletDesign,
    fabrication: FabricationModel,
    cx_model: EmpiricalCXModel,
    batch_size: int,
    rng: np.random.Generator,
    thresholds: CollisionThresholds | None = None,
    tuning: TuningOptions | None = None,
    draw_seed=None,
) -> ChipletBin:
    """Fabricate, screen, (optionally) repair and KGD-characterise a batch.

    ``draw_seed`` — the exact seed ``rng`` was freshly constructed from,
    when known — routes the fabrication draws through the sample bank
    (:mod:`repro.core.sample_bank`): bins re-fabricated at another sigma
    but the same seed reuse the base draws, and the characterisation /
    repair streams continue ``rng`` bit-identically.

    With ``tuning`` set, dies that fail collision screening are handed to
    the post-fabrication repair stage; recovered dies join the bin after
    the as-fabricated survivors, flagged ``repaired``, before the whole
    bin is speed-sorted by average error.  Repair (and the repaired
    dies' error characterisation) draws from a *spawned child* of
    ``rng``, never from the main stream — so the as-fabricated
    survivors' frequencies AND error draws are bit-identical between a
    tuned bin and its untuned twin at the same seed, and the repair axis
    of a comparison isolates the repair effect instead of resampling
    every coupling.  The untuned path consumes exactly the historical
    random stream.  (Child spawning needs a seed-sequence-backed
    generator — anything from ``np.random.default_rng``.)
    """
    frequencies = fabrication.sample_batch(
        design.allocation, batch_size, rng, draw_seed=draw_seed
    )
    mask = collision_free_mask(design.allocation, frequencies, thresholds)
    num_repaired = 0
    repaired_rows = frequencies[:0]
    repaired_tuned: list[tuple[int, ...]] = []
    repair_rng: np.random.Generator | None = None
    if tuning is not None and not mask.all():
        repair_rng = rng.spawn(1)[0]
        outcome = repair_batch(
            design.allocation, frequencies, tuning, repair_rng, thresholds
        )
        num_repaired = outcome.num_repaired
        repaired_rows = outcome.frequencies[outcome.repaired_mask]
        repaired_tuned = [
            outcome.tuned_qubit_indices.get(int(index), ())
            for index in np.flatnonzero(outcome.repaired_mask)
        ]

    edges = design.edges()
    edge_u = np.asarray([u for u, _ in edges])
    edge_v = np.asarray([v for _, v in edges])

    def _characterise(rows: np.ndarray, sample_rng: np.random.Generator) -> np.ndarray:
        # Vectorised detunings for every surviving die and coupling; the
        # whole bin is characterised from one contiguous (dies, edges)
        # array.
        detunings = np.abs(rows[:, edge_u] - rows[:, edge_v])
        return cx_model.sample_many(detunings, sample_rng)

    # Characterise both survivor groups device-major, then build the bin
    # already speed-sorted: per-die averages come from one bulk
    # mean(axis=1) over the contiguous error array, and the stable
    # argsort reproduces exactly what sorting chiplet objects by their
    # per-die dict average used to produce (same float64 values, same
    # tie order: as-fabricated dies before repaired ones).
    as_fab = frequencies[mask]
    parts: list[np.ndarray] = []
    part_errors: list[np.ndarray] = []
    if as_fab.shape[0]:
        parts.append(as_fab)
        part_errors.append(_characterise(as_fab, rng))
    if repaired_rows.shape[0]:
        parts.append(repaired_rows)
        part_errors.append(_characterise(repaired_rows, repair_rng))

    chiplets: list[FabricatedChiplet] = []
    if parts:
        num_as_fab = as_fab.shape[0]
        all_rows = np.concatenate(parts, axis=0)
        all_errors = np.concatenate(part_errors, axis=0)
        averages = all_errors.mean(axis=1)
        error_lists = all_errors.tolist()  # one bulk ndarray -> float conversion
        for position in np.argsort(averages, kind="stable"):
            position = int(position)
            is_repaired = position >= num_as_fab
            chiplets.append(
                FabricatedChiplet(
                    frequencies_ghz=all_rows[position].copy(),
                    edge_errors=dict(zip(edges, error_lists[position])),
                    repaired=is_repaired,
                    tuned_qubits=tuple(repaired_tuned[position - num_as_fab])
                    if is_repaired
                    else (),
                    average_error_ghz=float(averages[position]),
                )
            )
    return ChipletBin(
        design=design,
        chiplets=chiplets,
        batch_size=batch_size,
        num_repaired=num_repaired,
    )


def _try_placements(
    subset: list[FabricatedChiplet],
    design: MCMDesign,
    rng: np.random.Generator,
    max_reshuffles: int,
    thresholds: CollisionThresholds | None,
) -> tuple[list[int] | None, int]:
    """Search for a collision-free placement of ``subset`` into the MCM grid.

    Returns the placement (a permutation of subset indices) and the number
    of reshuffles that were attempted.

    The in-order placement is tested first (one cheap call — the common
    case when the bin is clean).  When it collides, every candidate
    permutation is drawn up front and evaluated in a *single* batched
    :func:`collision_free_mask` call instead of up to ``max_reshuffles``
    batch-of-1 calls (see ``benchmarks/bench_assembly.py`` for the
    measured speedup).  To keep the caller's random stream bit-identical
    to the historical draw-one-test-one loop — the same generator later
    samples link errors — the generator state is saved before the bulk
    draw and then replayed for exactly as many permutations as the
    sequential search would have consumed.
    """
    num_chips = design.num_chips
    identity = list(range(num_chips))
    frequencies = design.assemble_frequencies(
        [subset[i].frequencies_ghz for i in identity]
    )
    if bool(collision_free_mask(design.allocation, frequencies, thresholds)[0]):
        return identity, 0
    if max_reshuffles <= 0:
        return None, 0

    state = rng.bit_generator.state
    permutations = np.stack(
        [rng.permutation(num_chips) for _ in range(max_reshuffles)]
    )
    chip_frequencies = np.stack([c.frequencies_ghz for c in subset])
    # chip_frequencies[permutations] has shape (reshuffles, chips, qubits);
    # flattening the chip axis reproduces assemble_frequencies row by row.
    candidate_batch = chip_frequencies[permutations].reshape(max_reshuffles, -1)
    mask = collision_free_mask(design.allocation, candidate_batch, thresholds)
    hits = np.flatnonzero(mask)

    attempts = int(hits[0]) + 1 if hits.size else max_reshuffles
    rng.bit_generator.state = state
    for _ in range(attempts):
        rng.permutation(num_chips)

    if hits.size:
        return [int(chip) for chip in permutations[hits[0]]], attempts
    return None, attempts


def assemble_mcms(
    chiplet_bin: ChipletBin,
    design: MCMDesign,
    link_model: LinkErrorModel,
    rng: np.random.Generator,
    max_reshuffles: int = DEFAULT_MAX_RESHUFFLES,
    max_mcms: int | None = None,
    thresholds: CollisionThresholds | None = None,
) -> AssemblyResult:
    """Greedily stitch the sorted chiplet bin into complete MCMs.

    Parameters
    ----------
    chiplet_bin:
        Sorted, collision-free chiplets (best first).
    design:
        The MCM configuration to assemble.
    link_model:
        Inter-chip link error distribution used to characterise link gates.
    rng:
        Source of randomness for reshuffling and link-error sampling.
    max_reshuffles:
        Placement-permutation time-out per subset (paper: 100).
    max_mcms:
        Optional cap on the number of MCMs to assemble (useful when only
        the best module is needed for application analysis).
    thresholds:
        Collision windows.
    """
    if design.chiplet.num_qubits != chiplet_bin.design.num_qubits:
        raise ValueError("chiplet bin and MCM design use different chiplet sizes")

    result = AssemblyResult(design=design)
    pool = list(chiplet_bin.chiplets)
    num_chips = design.num_chips
    qc = design.chiplet.num_qubits

    while len(pool) >= num_chips:
        if max_mcms is not None and result.num_mcms >= max_mcms:
            break
        subset = pool[:num_chips]
        placement, attempts = _try_placements(
            subset, design, rng, max_reshuffles, thresholds
        )
        result.reshuffles += attempts
        if placement is None:
            # No collision-free arrangement: set the leading chiplet aside and
            # retry with the next subset from the sorted bin.
            pool.pop(0)
            result.chiplets_set_aside += 1
            continue

        ordered = [subset[i] for i in placement]
        frequencies = design.assemble_frequencies([c.frequencies_ghz for c in ordered])
        edge_errors: dict[tuple[int, int], float] = {}
        tuned_qubits: list[int] = []
        for chip_index, chiplet in enumerate(ordered):
            offset = chip_index * qc
            for (u, v), error in chiplet.edge_errors.items():
                edge_errors[(u + offset, v + offset)] = error
            tuned_qubits.extend(q + offset for q in chiplet.tuned_qubits)
        for link in design.links:
            edge_errors[link.edge] = float(link_model.sample(rng))

        repaired_chiplets = sum(1 for c in ordered if c.repaired)
        result.mcms.append(
            AssembledMCM(
                design=design,
                frequencies_ghz=frequencies,
                edge_errors=edge_errors,
                num_repaired_chiplets=repaired_chiplets,
                tuned_qubits=tuple(tuned_qubits),
            )
        )
        result.chiplets_used += num_chips
        result.repaired_chiplets_used += repaired_chiplets
        pool = pool[num_chips:]

    return result


def bump_bond_success_probability(
    num_link_qubits: int,
    bump_success: float = C4_BUMP_SUCCESS_PROBABILITY,
    bumps_per_link_qubit: int = BUMPS_PER_LINK_QUBIT,
    failure_multiplier: float = 1.0,
) -> float:
    """Probability that every link qubit of an MCM bonds successfully.

    ``failure_multiplier`` scales the per-bump *failure* probability and is
    used for the paper's 100x sensitivity study (Fig. 8 dashed curves).
    """
    if not 0.0 <= bump_success <= 1.0:
        raise ValueError("bump_success must be a probability")
    failure = (1.0 - bump_success) * failure_multiplier
    effective_success = max(0.0, 1.0 - failure)
    per_qubit = effective_success**bumps_per_link_qubit
    return per_qubit**num_link_qubits


def post_assembly_yield(
    result: AssemblyResult,
    batch_size: int,
    bump_success: float = C4_BUMP_SUCCESS_PROBABILITY,
    bumps_per_link_qubit: int = BUMPS_PER_LINK_QUBIT,
    failure_multiplier: float = 1.0,
) -> float:
    """Post-assembly MCM yield (paper Section VII-C1).

    The utilisation term is the fraction of the original fabrication batch
    that ended up inside complete, collision-free MCMs; the bonding term is
    the probability that all ``L`` link qubits of a module bond correctly.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    utilisation = result.chiplets_used / batch_size
    bonding = bump_bond_success_probability(
        result.design.num_link_qubits,
        bump_success=bump_success,
        bumps_per_link_qubit=bumps_per_link_qubit,
        failure_multiplier=failure_multiplier,
    )
    return utilisation * bonding
