"""Frequency-plan strategies for fixed-frequency transmon lattices.

The paper (Section III-B) avoids frequency collisions at design time by
assigning every qubit one of a small set of ideal frequencies
``F0 < F1 < ... < F(k-1)`` laid out so that the Table I criteria cannot
fire on an ideally fabricated device.  How many frequencies are needed,
and how the labels tile the device, depends on the topology:

* **heavy-hex** (the paper's choice) — three frequencies; the highest,
  ``F2``, goes only to the degree <= 2 bridge qubits, which act as the
  control of every Cross-Resonance interaction
  (:class:`HeavyHexThreeFrequencyPlan`);
* **square grid** — five frequencies in the classic distance-2 colouring
  ``(row + 2*col) mod 5``, so every closed neighbourhood carries five
  distinct labels (:class:`SquareFiveFrequencyPlan`);
* **ring / chain** — three frequencies repeating with period three along
  the line (:class:`RingThreeFrequencyPlan`).

Each strategy is a :class:`FrequencyPlan`: a picklable object that maps
a :class:`repro.topology.base.Lattice` to per-qubit labels and builds a
:class:`FrequencyAllocation` — per-qubit ideal frequencies and
anharmonicities, a directed control->target view of every coupling, and
the (control, target, target) triples required by the Table I criteria
of types 5-7.  Plans are registered per topology in
:data:`repro.core.architecture.ARCHITECTURES`.
"""

from __future__ import annotations

import dataclasses
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.topology.base import Lattice
from repro.topology.heavy_hex import HeavyHexLattice

__all__ = [
    "FrequencySpec",
    "FrequencyAllocation",
    "FrequencyPlan",
    "HeavyHexThreeFrequencyPlan",
    "SquareFiveFrequencyPlan",
    "RingThreeFrequencyPlan",
    "allocate_heavy_hex_frequencies",
    "allocation_from_labels",
    "heavy_hex_labels",
    "dense_label",
    "DEFAULT_ANHARMONICITY_GHZ",
    "DEFAULT_BASE_FREQUENCY_GHZ",
    "DEFAULT_STEP_GHZ",
]

#: Transmon anharmonicity used throughout the paper (GHz).
DEFAULT_ANHARMONICITY_GHZ = -0.330

#: Lowest ideal frequency F0 (GHz); the paper fixes it at ~5 GHz.
DEFAULT_BASE_FREQUENCY_GHZ = 5.0

#: Ideal detuning between consecutive frequencies; 0.06 GHz maximises yield
#: in the paper's Fig. 4 sweep.
DEFAULT_STEP_GHZ = 0.06


@dataclass(frozen=True)
class FrequencySpec:
    """Design targets for an equally spaced frequency pattern.

    Attributes
    ----------
    base_ghz:
        Ideal frequency of the ``F0`` qubits.
    step_ghz:
        Detuning between consecutive ideal frequencies, so
        ``F(k) = F0 + k * step``.
    anharmonicity_ghz:
        Transmon anharmonicity (negative).
    num_frequencies:
        Number of distinct ideal frequencies the plan uses (three for
        the paper's heavy-hex pattern, five for the square lattice).
    """

    base_ghz: float = DEFAULT_BASE_FREQUENCY_GHZ
    step_ghz: float = DEFAULT_STEP_GHZ
    anharmonicity_ghz: float = DEFAULT_ANHARMONICITY_GHZ
    num_frequencies: int = 3

    def frequency_for_label(self, label: int) -> float:
        """Ideal frequency (GHz) of a qubit with a valid label."""
        if not 0 <= label < self.num_frequencies:
            raise ValueError(f"unknown frequency label {label}")
        return self.base_ghz + label * self.step_ghz

    @property
    def frequencies(self) -> tuple[float, ...]:
        """The ideal frequencies ``(F0, F1, ..., F(k-1))``."""
        return tuple(
            self.frequency_for_label(label) for label in range(self.num_frequencies)
        )


@dataclass
class FrequencyAllocation:
    """Frequency plan for one device topology.

    Attributes
    ----------
    spec:
        The :class:`FrequencySpec` this allocation was built from.
    labels:
        Per-qubit frequency label (``0 .. num_frequencies - 1``) as an
        ``int`` array.
    ideal_frequencies:
        Per-qubit ideal frequency in GHz.
    anharmonicities:
        Per-qubit anharmonicity in GHz.
    directed_edges:
        Every coupling expressed as a ``(control, target)`` pair.  Following
        the paper, the endpoint with the larger ideal frequency acts as the
        control of the Cross-Resonance gate.
    control_triples:
        ``(control, target_a, target_b)`` for every pair of targets that
        shares a control qubit; used by collision criteria 5-7.
    """

    spec: FrequencySpec
    labels: np.ndarray
    ideal_frequencies: np.ndarray
    anharmonicities: np.ndarray
    directed_edges: np.ndarray
    control_triples: np.ndarray

    @property
    def num_qubits(self) -> int:
        """Number of qubits covered by the allocation."""
        return int(self.labels.shape[0])

    @property
    def num_edges(self) -> int:
        """Number of couplings covered by the allocation."""
        return int(self.directed_edges.shape[0])

    def label_counts(self) -> dict[int, int]:
        """Map frequency label -> number of qubits carrying it."""
        values, counts = np.unique(self.labels, return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}


def _orient_edges(
    edges: list[tuple[int, int]], labels: np.ndarray, ideal: np.ndarray
) -> np.ndarray:
    """Orient undirected couplings into (control, target) pairs.

    The control is the endpoint with the higher ideal frequency; ties (which
    only occur for inter-chip links joining same-label qubits) are broken by
    qubit index so the orientation is deterministic.
    """
    directed = []
    for u, v in edges:
        key_u = (ideal[u], labels[u], -u)
        key_v = (ideal[v], labels[v], -v)
        control, target = (u, v) if key_u > key_v else (v, u)
        directed.append((control, target))
    if not directed:
        return np.zeros((0, 2), dtype=np.int64)
    return np.asarray(directed, dtype=np.int64)


def _control_triples(directed_edges: np.ndarray) -> np.ndarray:
    """Enumerate (control, target_a, target_b) triples for shared controls."""
    triples: list[tuple[int, int, int]] = []
    by_control: dict[int, list[int]] = {}
    for control, target in directed_edges:
        by_control.setdefault(int(control), []).append(int(target))
    for control, targets in by_control.items():
        targets = sorted(targets)
        for i in range(len(targets)):
            for j in range(i + 1, len(targets)):
                triples.append((control, targets[i], targets[j]))
    if not triples:
        return np.zeros((0, 3), dtype=np.int64)
    return np.asarray(triples, dtype=np.int64)


#: Period-4 label pattern along dense rows: F1, F2, F0, F2, F1, F2, F0, ...
#: Bridge qubits always carry F2.  The pattern guarantees that
#: (a) nearest neighbours never share a label,
#: (b) every F2 qubit has degree <= 2 and its neighbours carry different
#:     labels (one F0, one F1), and
#: (c) only F2 qubits ever act as the control of a Cross-Resonance gate,
#: exactly as required by the paper's ideal heavy-hex assignment.
_DENSE_ROW_PATTERN = (1, 2, 0, 2)


def dense_label(row: int, col: int, phase: int = 0) -> int:
    """Frequency label of a heavy-hex dense-row qubit at ``(row, col)``.

    Odd dense rows are shifted by two columns so that bridge qubits (which
    sit at columns 0/2 modulo 4) always connect an F0 qubit to an F1 qubit.
    The ``phase`` offset (in columns) lets MCM assembly shift the pattern of
    individual chiplets when stitching them together.
    """
    return _DENSE_ROW_PATTERN[(col + 2 * (row % 2) + phase) % 4]


def heavy_hex_labels(lattice: HeavyHexLattice, phase: int = 0) -> np.ndarray:
    """Frequency labels for a heavy-hex lattice.

    Dense qubits follow the period-4 pattern ``F1, F2, F0, F2`` (shifted by
    two columns on odd rows); bridge qubits always receive F2.  See
    :func:`dense_label` for the role of ``phase``.
    """
    labels = np.empty(lattice.num_qubits, dtype=np.int64)
    for site in lattice.sites:
        if site.is_bridge:
            labels[site.index] = 2
        else:
            labels[site.index] = dense_label(site.row, site.col, phase)
    return labels


def allocation_from_labels(
    labels: np.ndarray,
    edges: list[tuple[int, int]],
    spec: FrequencySpec | None = None,
) -> FrequencyAllocation:
    """Build a :class:`FrequencyAllocation` from explicit labels and couplings."""
    spec = spec or FrequencySpec()
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError("labels must be a one-dimensional array")
    if labels.size and (labels.min() < 0 or labels.max() >= spec.num_frequencies):
        raise ValueError(
            f"labels must lie in [0, {spec.num_frequencies - 1}] "
            f"for a {spec.num_frequencies}-frequency spec"
        )
    ideal = np.asarray([spec.frequency_for_label(int(l)) for l in labels], dtype=float)
    anharmonicity = np.full(labels.shape[0], spec.anharmonicity_ghz, dtype=float)
    directed = _orient_edges(edges, labels, ideal)
    triples = _control_triples(directed)
    return FrequencyAllocation(
        spec=spec,
        labels=labels,
        ideal_frequencies=ideal,
        anharmonicities=anharmonicity,
        directed_edges=directed,
        control_triples=triples,
    )


class FrequencyPlan(ABC):
    """Strategy interface: how a topology's qubits get frequency labels.

    A plan owns three decisions:

    1. **labelling** — :meth:`labels` maps every lattice site to one of
       ``num_frequencies`` labels such that an *ideally* fabricated
       device violates none of the Table I criteria;
    2. **orientation** — implicitly, via the shared higher-frequency-is-
       control rule applied to the plan's labels; and
    3. **triples** — the (control, target, target) sets of criteria 5-7,
       derived from that orientation.

    Subclasses are small frozen dataclasses, so plans are picklable
    (engine workers), hashable and stable under the engine's
    content-addressed cache keys.
    """

    #: Identifier of the plan (used in logs and registry descriptions).
    name: str = "plan"

    #: Number of distinct ideal frequencies the plan hands out.
    num_frequencies: int = 3

    @abstractmethod
    def labels(self, lattice: Lattice) -> np.ndarray:
        """Per-qubit frequency labels (``0 .. num_frequencies - 1``)."""

    def spec(
        self,
        step_ghz: float | None = None,
        base_ghz: float | None = None,
        anharmonicity_ghz: float | None = None,
    ) -> FrequencySpec:
        """A :class:`FrequencySpec` sized for this plan's label count."""
        return FrequencySpec(
            base_ghz=DEFAULT_BASE_FREQUENCY_GHZ if base_ghz is None else base_ghz,
            step_ghz=DEFAULT_STEP_GHZ if step_ghz is None else step_ghz,
            anharmonicity_ghz=(
                DEFAULT_ANHARMONICITY_GHZ
                if anharmonicity_ghz is None
                else anharmonicity_ghz
            ),
            num_frequencies=self.num_frequencies,
        )

    def coerce_spec(self, spec: FrequencySpec | None) -> FrequencySpec:
        """Resize a caller-provided spec to this plan's label count.

        Callers that only care about physics parameters (step, base,
        anharmonicity) can hand any spec to any plan; a spec already
        sized correctly — every existing heavy-hex call site — passes
        through untouched.
        """
        if spec is None:
            return self.spec()
        if spec.num_frequencies != self.num_frequencies:
            spec = dataclasses.replace(spec, num_frequencies=self.num_frequencies)
        return spec

    def allocate(
        self, lattice: Lattice, spec: FrequencySpec | None = None
    ) -> FrequencyAllocation:
        """Label a lattice and build its :class:`FrequencyAllocation`."""
        return allocation_from_labels(
            self.labels(lattice), lattice.edges, spec=self.coerce_spec(spec)
        )


@dataclass(frozen=True)
class HeavyHexThreeFrequencyPlan(FrequencyPlan):
    """The paper's three-frequency heavy-hex pattern.

    Dense rows carry the period-4 pattern ``F1, F2, F0, F2`` (odd rows
    shifted by two columns); bridge qubits always carry F2, so only
    degree <= 2 qubits ever act as Cross-Resonance controls.

    Attributes
    ----------
    phase:
        Column offset of the dense-row pattern, letting MCM assembly
        shift individual chiplets when stitching them together.
    """

    phase: int = 0

    name = "heavy-hex-3f"
    num_frequencies = 3

    def labels(self, lattice: Lattice) -> np.ndarray:
        return heavy_hex_labels(lattice, phase=self.phase)


@dataclass(frozen=True)
class SquareFiveFrequencyPlan(FrequencyPlan):
    """Five-frequency distance-2 colouring of the square lattice.

    ``label(row, col) = (row + 2*col + phase) mod 5`` gives every site a
    label distinct from everything within two hops — all four neighbours
    *and* all pairs of targets sharing a control differ, which is what
    keeps types 1 and 5 off an ideal device.  The remaining criteria
    stay clear because label differences span at most four steps
    (<= 0.28 GHz at the sweep's largest step) while the type 2/3/6/7
    conditions sit near half or full anharmonicity (0.165 / 0.330 GHz).
    """

    phase: int = 0

    name = "square-5f"
    num_frequencies = 5

    def labels(self, lattice: Lattice) -> np.ndarray:
        labels = np.empty(lattice.num_qubits, dtype=np.int64)
        for site in lattice.sites:
            labels[site.index] = (site.row + 2 * site.col + self.phase) % 5
        return labels


@dataclass(frozen=True)
class RingThreeFrequencyPlan(FrequencyPlan):
    """Period-3 three-frequency pattern along a chain.

    ``label(i) = (i + phase) mod 3``: neighbours always differ, and the
    two targets of any shared control (the local-maximum F2 qubits) are
    one F0 and one F1.  Seam-free closed rings additionally require the
    qubit count to be a multiple of three — the reason the registered
    ``ring`` architecture builds open chains (see
    :mod:`repro.topology.ring`).
    """

    phase: int = 0

    name = "ring-3f"
    num_frequencies = 3

    def labels(self, lattice: Lattice) -> np.ndarray:
        labels = np.empty(lattice.num_qubits, dtype=np.int64)
        for site in lattice.sites:
            labels[site.index] = (site.col + self.phase) % 3
        return labels


def allocate_heavy_hex_frequencies(
    lattice: HeavyHexLattice,
    spec: FrequencySpec | None = None,
    phase: int = 0,
) -> FrequencyAllocation:
    """Allocate the three-frequency heavy-hex pattern onto a lattice.

    Kept as the long-standing convenience entry point; equivalent to
    ``HeavyHexThreeFrequencyPlan(phase=phase).allocate(lattice, spec)``.

    Parameters
    ----------
    lattice:
        The heavy-hex lattice to label.
    spec:
        Frequency targets; defaults to the paper's 5.0/5.06/5.12 GHz pattern.
    phase:
        Parity flip of the F0/F1 assignment (0 or 1).
    """
    return HeavyHexThreeFrequencyPlan(phase=phase).allocate(lattice, spec=spec)
