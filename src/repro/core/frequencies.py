"""Three-frequency allocation for heavy-hex transmon lattices.

The paper (Section III-B) avoids frequency collisions at design time by
assigning every qubit one of three ideal frequencies ``F0 < F1 < F2`` such
that

* nearest neighbours never share a label,
* the highest frequency, ``F2``, is only given to qubits of degree <= 2
  (the heavy-hex *bridge* qubits), which act as the control in
  Cross-Resonance interactions, and
* an ``F2`` qubit is never surrounded by two qubits of the same label.

This module produces a :class:`FrequencyAllocation` for a lattice: per-qubit
labels, ideal frequencies, anharmonicities, a directed control->target view
of every coupling, and the (control, target, target) triples required by the
Table I criteria of types 5-7.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.topology.heavy_hex import HeavyHexLattice

__all__ = [
    "FrequencySpec",
    "FrequencyAllocation",
    "allocate_heavy_hex_frequencies",
    "allocation_from_labels",
    "heavy_hex_labels",
    "dense_label",
    "DEFAULT_ANHARMONICITY_GHZ",
    "DEFAULT_BASE_FREQUENCY_GHZ",
    "DEFAULT_STEP_GHZ",
]

#: Transmon anharmonicity used throughout the paper (GHz).
DEFAULT_ANHARMONICITY_GHZ = -0.330

#: Lowest ideal frequency F0 (GHz); the paper fixes it at ~5 GHz.
DEFAULT_BASE_FREQUENCY_GHZ = 5.0

#: Ideal detuning between consecutive frequencies; 0.06 GHz maximises yield
#: in the paper's Fig. 4 sweep.
DEFAULT_STEP_GHZ = 0.06


@dataclass(frozen=True)
class FrequencySpec:
    """Design targets for the three-frequency heavy-hex pattern.

    Attributes
    ----------
    base_ghz:
        Ideal frequency of the ``F0`` qubits.
    step_ghz:
        Detuning between consecutive ideal frequencies, so
        ``F1 = F0 + step`` and ``F2 = F0 + 2 * step``.
    anharmonicity_ghz:
        Transmon anharmonicity (negative).
    """

    base_ghz: float = DEFAULT_BASE_FREQUENCY_GHZ
    step_ghz: float = DEFAULT_STEP_GHZ
    anharmonicity_ghz: float = DEFAULT_ANHARMONICITY_GHZ

    def frequency_for_label(self, label: int) -> float:
        """Ideal frequency (GHz) of a qubit with label 0, 1 or 2."""
        if label not in (0, 1, 2):
            raise ValueError(f"unknown frequency label {label}")
        return self.base_ghz + label * self.step_ghz

    @property
    def frequencies(self) -> tuple[float, float, float]:
        """The three ideal frequencies ``(F0, F1, F2)``."""
        return (
            self.frequency_for_label(0),
            self.frequency_for_label(1),
            self.frequency_for_label(2),
        )


@dataclass
class FrequencyAllocation:
    """Frequency plan for one device topology.

    Attributes
    ----------
    spec:
        The :class:`FrequencySpec` this allocation was built from.
    labels:
        Per-qubit frequency label (0, 1 or 2) as an ``int`` array.
    ideal_frequencies:
        Per-qubit ideal frequency in GHz.
    anharmonicities:
        Per-qubit anharmonicity in GHz.
    directed_edges:
        Every coupling expressed as a ``(control, target)`` pair.  Following
        the paper, the endpoint with the larger ideal frequency acts as the
        control of the Cross-Resonance gate.
    control_triples:
        ``(control, target_a, target_b)`` for every pair of targets that
        shares a control qubit; used by collision criteria 5-7.
    """

    spec: FrequencySpec
    labels: np.ndarray
    ideal_frequencies: np.ndarray
    anharmonicities: np.ndarray
    directed_edges: np.ndarray
    control_triples: np.ndarray

    @property
    def num_qubits(self) -> int:
        """Number of qubits covered by the allocation."""
        return int(self.labels.shape[0])

    @property
    def num_edges(self) -> int:
        """Number of couplings covered by the allocation."""
        return int(self.directed_edges.shape[0])

    def label_counts(self) -> dict[int, int]:
        """Map frequency label -> number of qubits carrying it."""
        values, counts = np.unique(self.labels, return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}


def _orient_edges(
    edges: list[tuple[int, int]], labels: np.ndarray, ideal: np.ndarray
) -> np.ndarray:
    """Orient undirected couplings into (control, target) pairs.

    The control is the endpoint with the higher ideal frequency; ties (which
    only occur for inter-chip links joining same-label qubits) are broken by
    qubit index so the orientation is deterministic.
    """
    directed = []
    for u, v in edges:
        key_u = (ideal[u], labels[u], -u)
        key_v = (ideal[v], labels[v], -v)
        control, target = (u, v) if key_u > key_v else (v, u)
        directed.append((control, target))
    if not directed:
        return np.zeros((0, 2), dtype=np.int64)
    return np.asarray(directed, dtype=np.int64)


def _control_triples(directed_edges: np.ndarray) -> np.ndarray:
    """Enumerate (control, target_a, target_b) triples for shared controls."""
    triples: list[tuple[int, int, int]] = []
    by_control: dict[int, list[int]] = {}
    for control, target in directed_edges:
        by_control.setdefault(int(control), []).append(int(target))
    for control, targets in by_control.items():
        targets = sorted(targets)
        for i in range(len(targets)):
            for j in range(i + 1, len(targets)):
                triples.append((control, targets[i], targets[j]))
    if not triples:
        return np.zeros((0, 3), dtype=np.int64)
    return np.asarray(triples, dtype=np.int64)


#: Period-4 label pattern along dense rows: F1, F2, F0, F2, F1, F2, F0, ...
#: Bridge qubits always carry F2.  The pattern guarantees that
#: (a) nearest neighbours never share a label,
#: (b) every F2 qubit has degree <= 2 and its neighbours carry different
#:     labels (one F0, one F1), and
#: (c) only F2 qubits ever act as the control of a Cross-Resonance gate,
#: exactly as required by the paper's ideal heavy-hex assignment.
_DENSE_ROW_PATTERN = (1, 2, 0, 2)


def dense_label(row: int, col: int, phase: int = 0) -> int:
    """Frequency label of a dense-row qubit at ``(row, col)``.

    Odd dense rows are shifted by two columns so that bridge qubits (which
    sit at columns 0/2 modulo 4) always connect an F0 qubit to an F1 qubit.
    The ``phase`` offset (in columns) lets MCM assembly shift the pattern of
    individual chiplets when stitching them together.
    """
    return _DENSE_ROW_PATTERN[(col + 2 * (row % 2) + phase) % 4]


def heavy_hex_labels(lattice: HeavyHexLattice, phase: int = 0) -> np.ndarray:
    """Frequency labels for a heavy-hex lattice.

    Dense qubits follow the period-4 pattern ``F1, F2, F0, F2`` (shifted by
    two columns on odd rows); bridge qubits always receive F2.  See
    :func:`dense_label` for the role of ``phase``.
    """
    labels = np.empty(lattice.num_qubits, dtype=np.int64)
    for site in lattice.sites:
        if site.is_bridge:
            labels[site.index] = 2
        else:
            labels[site.index] = dense_label(site.row, site.col, phase)
    return labels


def allocation_from_labels(
    labels: np.ndarray,
    edges: list[tuple[int, int]],
    spec: FrequencySpec | None = None,
) -> FrequencyAllocation:
    """Build a :class:`FrequencyAllocation` from explicit labels and couplings."""
    spec = spec or FrequencySpec()
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError("labels must be a one-dimensional array")
    if labels.size and (labels.min() < 0 or labels.max() > 2):
        raise ValueError("labels must be 0, 1 or 2")
    ideal = np.asarray([spec.frequency_for_label(int(l)) for l in labels], dtype=float)
    anharmonicity = np.full(labels.shape[0], spec.anharmonicity_ghz, dtype=float)
    directed = _orient_edges(edges, labels, ideal)
    triples = _control_triples(directed)
    return FrequencyAllocation(
        spec=spec,
        labels=labels,
        ideal_frequencies=ideal,
        anharmonicities=anharmonicity,
        directed_edges=directed,
        control_triples=triples,
    )


def allocate_heavy_hex_frequencies(
    lattice: HeavyHexLattice,
    spec: FrequencySpec | None = None,
    phase: int = 0,
) -> FrequencyAllocation:
    """Allocate the three-frequency heavy-hex pattern onto a lattice.

    Parameters
    ----------
    lattice:
        The heavy-hex lattice to label.
    spec:
        Frequency targets; defaults to the paper's 5.0/5.06/5.12 GHz pattern.
    phase:
        Parity flip of the F0/F1 assignment (0 or 1).
    """
    labels = heavy_hex_labels(lattice, phase=phase)
    return allocation_from_labels(labels, lattice.edges, spec=spec)
