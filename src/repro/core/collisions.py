"""The seven fixed-frequency transmon collision criteria (paper Table I).

A *frequency collision* is a qubit-qubit detuning condition that pushes the
Cross-Resonance gate error above roughly 1 %.  The paper adopts the seven
criteria of Hertzberg et al. / Magesan & Gambetta, reproduced below with the
thresholds used in Table I of the paper (all frequencies in GHz, ``a`` is
the control-qubit anharmonicity, negative for transmons):

====  ==========================================  ===========  =====================================
Type  Condition                                    Threshold    Applies to
====  ==========================================  ===========  =====================================
1     ``f_i = f_j``                                +/- 0.017    nearest neighbours ``i``, ``j``
2     ``f_i + a/2 = f_j``                          +/- 0.004    control ``i``, target ``j``
3     ``f_i = f_j + a``                            +/- 0.030    nearest neighbours ``i``, ``j``
4     ``f_j < f_i + a`` or ``f_i < f_j``           (region)     control ``i``, target ``j``
5     ``f_j = f_k``                                +/- 0.017    targets ``j``, ``k`` sharing control ``i``
6     ``f_j = f_k + a`` or ``f_j + a = f_k``       +/- 0.025    targets ``j``, ``k`` sharing control ``i``
7     ``2 f_i + a = f_j + f_k``                    +/- 0.017    control ``i`` with targets ``j``, ``k``
====  ==========================================  ===========  =====================================

The module offers both a scalar API (useful for tests and for explaining a
single violation) and a batched, fully vectorised evaluator used by the
Monte-Carlo yield model, where frequencies have shape ``(batch, num_qubits)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.frequencies import FrequencyAllocation
from repro.engine.phases import phase

__all__ = [
    "CollisionThresholds",
    "CollisionReport",
    "count_collisions",
    "find_collisions",
    "has_collision",
    "collision_free_mask",
    "count_collision_free",
    "COLLISION_TYPES",
]

#: Identifiers of the seven collision criteria.
COLLISION_TYPES = (1, 2, 3, 4, 5, 6, 7)


@dataclass(frozen=True)
class CollisionThresholds:
    """Numeric windows (GHz) for the seven collision criteria.

    The defaults are the Table I values; they are parameters so future
    fabrication/gate improvements can be modelled by tightening them.
    """

    type1_ghz: float = 0.017
    type2_ghz: float = 0.004
    type3_ghz: float = 0.030
    type5_ghz: float = 0.017
    type6_ghz: float = 0.025
    type7_ghz: float = 0.017


@dataclass
class CollisionReport:
    """Detailed outcome of checking one device for frequency collisions.

    Attributes
    ----------
    collisions:
        List of ``(type, qubits)`` tuples, one per violated condition, where
        ``qubits`` identifies the participating qubits (pair or triple).
    counts_by_type:
        Number of violations of each criterion type.
    """

    collisions: list[tuple[int, tuple[int, ...]]] = field(default_factory=list)

    @property
    def is_collision_free(self) -> bool:
        """True when no criterion is violated."""
        return not self.collisions

    @property
    def num_collisions(self) -> int:
        """Total number of violations."""
        return len(self.collisions)

    def counts_by_type(self) -> dict[int, int]:
        """Map collision type -> number of violations of that type."""
        counts = {ctype: 0 for ctype in COLLISION_TYPES}
        for ctype, _ in self.collisions:
            counts[ctype] += 1
        return counts


def _pairwise_arrays(allocation: FrequencyAllocation):
    edges = allocation.directed_edges
    triples = allocation.control_triples
    return edges, triples


def find_collisions(
    allocation: FrequencyAllocation,
    frequencies: np.ndarray,
    thresholds: CollisionThresholds | None = None,
) -> CollisionReport:
    """List every collision on a single device.

    Parameters
    ----------
    allocation:
        Frequency plan (provides edge orientation and anharmonicities).
    frequencies:
        Actual (post-fabrication) qubit frequencies, shape ``(num_qubits,)``.
    thresholds:
        Criterion windows; defaults to the paper's Table I values.
    """
    thresholds = thresholds or CollisionThresholds()
    freqs = np.asarray(frequencies, dtype=float)
    if freqs.shape != (allocation.num_qubits,):
        raise ValueError(
            f"expected {allocation.num_qubits} frequencies, got shape {freqs.shape}"
        )
    alpha = allocation.anharmonicities
    report = CollisionReport()
    edges, triples = _pairwise_arrays(allocation)

    for control, target in edges:
        fi, fj = freqs[control], freqs[target]
        ai = alpha[control]
        aj = alpha[target]
        if abs(fi - fj) < thresholds.type1_ghz:
            report.collisions.append((1, (int(control), int(target))))
        if abs(fi + ai / 2.0 - fj) < thresholds.type2_ghz:
            report.collisions.append((2, (int(control), int(target))))
        if (
            abs(fi - (fj + aj)) < thresholds.type3_ghz
            or abs(fj - (fi + ai)) < thresholds.type3_ghz
        ):
            report.collisions.append((3, (int(control), int(target))))
        if fj < fi + ai or fi < fj:
            report.collisions.append((4, (int(control), int(target))))

    for control, t_a, t_b in triples:
        fj, fk = freqs[t_a], freqs[t_b]
        fi = freqs[control]
        ai = alpha[control]
        aj = alpha[t_a]
        ak = alpha[t_b]
        if abs(fj - fk) < thresholds.type5_ghz:
            report.collisions.append((5, (int(control), int(t_a), int(t_b))))
        if (
            abs(fj - (fk + ak)) < thresholds.type6_ghz
            or abs(fk - (fj + aj)) < thresholds.type6_ghz
        ):
            report.collisions.append((6, (int(control), int(t_a), int(t_b))))
        if abs(2.0 * fi + ai - (fj + fk)) < thresholds.type7_ghz:
            report.collisions.append((7, (int(control), int(t_a), int(t_b))))

    return report


def has_collision(
    allocation: FrequencyAllocation,
    frequencies: np.ndarray,
    thresholds: CollisionThresholds | None = None,
) -> bool:
    """True when the device has at least one frequency collision."""
    return not find_collisions(allocation, frequencies, thresholds).is_collision_free


def count_collisions(
    allocation: FrequencyAllocation,
    frequencies: np.ndarray,
    thresholds: CollisionThresholds | None = None,
) -> dict[int, int]:
    """Number of violations per collision type for one device."""
    return find_collisions(allocation, frequencies, thresholds).counts_by_type()


def collision_free_mask(
    allocation: FrequencyAllocation,
    frequencies: np.ndarray,
    thresholds: CollisionThresholds | None = None,
) -> np.ndarray:
    """Vectorised collision check across a batch of devices.

    Parameters
    ----------
    allocation:
        Frequency plan shared by every device in the batch.
    frequencies:
        Array of shape ``(batch, num_qubits)`` with the sampled frequencies
        of each fabricated device.
    thresholds:
        Criterion windows; defaults to the paper's Table I values.

    Returns
    -------
    numpy.ndarray
        Boolean array of shape ``(batch,)``; ``True`` marks collision-free
        devices.

    Notes
    -----
    The criteria are evaluated in *stages* over a shrinking device
    subset: the wide criteria (types 1 and 4, which need only the edge
    endpoint frequencies) screen the whole batch first, the remaining
    pair criteria check only the survivors, and the shared-control
    criteria only the survivors of those.  A device is collision-free
    iff no criterion flags it, so staging cannot change the result —
    but at the yield phase transition, where most devices die on a pair
    criterion, the later (and wider, per-triple) stages run on a few
    percent of the batch and the kernel speeds up severalfold (see
    ``benchmarks/bench_engine.py``).
    """
    with phase("mask"):
        return _collision_free_mask_impl(allocation, frequencies, thresholds)


def _collision_free_mask_impl(
    allocation: FrequencyAllocation,
    frequencies: np.ndarray,
    thresholds: CollisionThresholds | None = None,
) -> np.ndarray:
    thresholds = thresholds or CollisionThresholds()
    freqs = np.asarray(frequencies, dtype=float)
    if freqs.ndim == 1:
        freqs = freqs[np.newaxis, :]
    if freqs.shape[1] != allocation.num_qubits:
        raise ValueError(
            f"expected {allocation.num_qubits} qubits per device, got {freqs.shape[1]}"
        )
    batch = freqs.shape[0]
    alpha = allocation.anharmonicities
    alive = np.arange(batch)  # indices of devices with no violation found yet
    sub = freqs

    edges = allocation.directed_edges
    if edges.shape[0] and alive.size:
        control = edges[:, 0]
        target = edges[:, 1]
        ai = alpha[control][np.newaxis, :]
        aj = alpha[target][np.newaxis, :]

        # Stage 1: the cheap, high-kill criteria (types 1 and 4).
        fi = sub[:, control]
        fj = sub[:, target]
        quick = (np.abs(fi - fj) < thresholds.type1_ghz) | (fj < fi + ai) | (fi < fj)
        keep = ~quick.any(axis=1)
        if not keep.all():
            alive = alive[keep]
            sub = sub[keep]
            fi = fi[keep]
            fj = fj[keep]

        # Stage 2: the narrow pair windows (types 2 and 3) on survivors.
        if alive.size:
            rest = (np.abs(fi + ai / 2.0 - fj) < thresholds.type2_ghz) | (
                np.abs(fi - (fj + aj)) < thresholds.type3_ghz
            ) | (np.abs(fj - (fi + ai)) < thresholds.type3_ghz)
            keep = ~rest.any(axis=1)
            if not keep.all():
                alive = alive[keep]
                sub = sub[keep]

    # Stage 3: shared-control criteria (types 5-7) on pair survivors.
    triples = allocation.control_triples
    if triples.shape[0] and alive.size:
        control = triples[:, 0]
        t_a = triples[:, 1]
        t_b = triples[:, 2]
        fi = sub[:, control]
        fj = sub[:, t_a]
        fk = sub[:, t_b]
        ai = alpha[control][np.newaxis, :]
        aj = alpha[t_a][np.newaxis, :]
        ak = alpha[t_b][np.newaxis, :]

        type5 = np.abs(fj - fk) < thresholds.type5_ghz
        type6 = (np.abs(fj - (fk + ak)) < thresholds.type6_ghz) | (
            np.abs(fk - (fj + aj)) < thresholds.type6_ghz
        )
        type7 = np.abs(2.0 * fi + ai - (fj + fk)) < thresholds.type7_ghz
        triple_any = type5 | type6 | type7
        alive = alive[~triple_any.any(axis=1)]

    free = np.zeros(batch, dtype=bool)
    free[alive] = True
    return free


def count_collision_free(
    allocation: FrequencyAllocation,
    frequencies: np.ndarray,
    thresholds: CollisionThresholds | None = None,
) -> int:
    """Number of collision-free devices in a ``(batch, num_qubits)`` array.

    A module-level reduction over :func:`collision_free_mask`, suitable
    as an engine task: it pickles by reference, caches safely, and its
    only large parameter is the frequency array — which the
    ``shared-memory`` backend ships to workers zero-copy.
    """
    return int(collision_free_mask(allocation, frequencies, thresholds).sum())
