"""Monolithic vs. MCM fabrication-output model (paper Section V-C, Eq. 1).

Chiplets occupy less wafer area than a monolithic die, so the same wafer
budget produces many more of them.  Approximating the die-area ratio by the
qubit-capacity ratio ``q_m / q_c``, the number of complete ``k x m`` MCMs
obtainable from the wafer area that would have produced ``B`` monolithic
dies is

    N = Y_c * (B * q_m / q_c) / (k * m)            (Eq. 1)

while the monolithic output is simply ``Y_m * B``.  The paper's worked
example (q_m = 100, q_c = 10, B = 1000, Y_m = 0.11, Y_c = 0.85, 2 x 5 MCMs)
gives an output gain of roughly 7.7x.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "FabricationOutput",
    "mcm_output_upper_bound",
    "monolithic_output",
    "compare_fabrication_output",
]


@dataclass(frozen=True)
class FabricationOutput:
    """Comparison of monolithic vs. MCM production from equal wafer area.

    Attributes
    ----------
    monolithic_devices:
        Expected number of collision-free monolithic devices (``Y_m * B``).
    mcm_devices:
        Upper bound on the number of complete MCMs (Eq. 1).
    gain:
        ``mcm_devices / monolithic_devices`` (``inf`` when the monolithic
        yield is zero).
    """

    monolithic_qubits: int
    chiplet_qubits: int
    grid_rows: int
    grid_cols: int
    batch_size: int
    monolithic_yield: float
    chiplet_yield: float
    monolithic_devices: float
    mcm_devices: float

    @property
    def gain(self) -> float:
        """Manufacturing-output gain of the MCM route over the monolith."""
        if self.monolithic_devices == 0:
            return float("inf")
        return self.mcm_devices / self.monolithic_devices


def mcm_output_upper_bound(
    chiplet_yield: float,
    batch_size: int,
    monolithic_qubits: int,
    chiplet_qubits: int,
    grid_rows: int,
    grid_cols: int,
) -> float:
    """Equation 1: upper bound on complete MCMs from the shared wafer budget."""
    if not 0.0 <= chiplet_yield <= 1.0:
        raise ValueError("chiplet_yield must be a probability")
    if min(batch_size, monolithic_qubits, chiplet_qubits, grid_rows, grid_cols) <= 0:
        raise ValueError("all size parameters must be positive")
    chiplet_batch = batch_size * monolithic_qubits / chiplet_qubits
    return chiplet_yield * chiplet_batch / (grid_rows * grid_cols)


def monolithic_output(monolithic_yield: float, batch_size: int) -> float:
    """Expected number of collision-free monolithic devices from the batch."""
    if not 0.0 <= monolithic_yield <= 1.0:
        raise ValueError("monolithic_yield must be a probability")
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    return monolithic_yield * batch_size


def compare_fabrication_output(
    monolithic_yield: float,
    chiplet_yield: float,
    batch_size: int,
    monolithic_qubits: int,
    chiplet_qubits: int,
    grid_rows: int,
    grid_cols: int,
) -> FabricationOutput:
    """Full Section V-C comparison for one (monolith, chiplet, MCM) triple."""
    if grid_rows * grid_cols * chiplet_qubits != monolithic_qubits:
        raise ValueError(
            "the MCM must contain the same number of qubits as the monolithic device"
        )
    return FabricationOutput(
        monolithic_qubits=monolithic_qubits,
        chiplet_qubits=chiplet_qubits,
        grid_rows=grid_rows,
        grid_cols=grid_cols,
        batch_size=batch_size,
        monolithic_yield=monolithic_yield,
        chiplet_yield=chiplet_yield,
        monolithic_devices=monolithic_output(monolithic_yield, batch_size),
        mcm_devices=mcm_output_upper_bound(
            chiplet_yield,
            batch_size,
            monolithic_qubits,
            chiplet_qubits,
            grid_rows,
            grid_cols,
        ),
    )
