"""Monolithic vs. MCM fabrication-output model (paper Section V-C, Eq. 1).

Chiplets occupy less wafer area than a monolithic die, so the same wafer
budget produces many more of them.  Approximating the die-area ratio by the
qubit-capacity ratio ``q_m / q_c``, the number of complete ``k x m`` MCMs
obtainable from the wafer area that would have produced ``B`` monolithic
dies is

    N = Y_c * (B * q_m / q_c) / (k * m)            (Eq. 1)

while the monolithic output is simply ``Y_m * B``.  The paper's worked
example (q_m = 100, q_c = 10, B = 1000, Y_m = 0.11, Y_c = 0.85, 2 x 5 MCMs)
gives an output gain of roughly 7.7x.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # circular at runtime: yield_model imports nothing from here
    from repro.core.yield_model import YieldResult

__all__ = [
    "FabricationOutput",
    "mcm_output_upper_bound",
    "monolithic_output",
    "compare_fabrication_output",
    "fabrication_output_from_results",
]


@dataclass(frozen=True)
class FabricationOutput:
    """Comparison of monolithic vs. MCM production from equal wafer area.

    Attributes
    ----------
    monolithic_devices:
        Expected number of collision-free monolithic devices (``Y_m * B``).
    mcm_devices:
        Upper bound on the number of complete MCMs (Eq. 1).
    monolithic_yield_ci, chiplet_yield_ci:
        Optional ``(low, high)`` binomial confidence intervals on the two
        input yields (present when the yields came from Monte-Carlo
        :class:`~repro.core.yield_model.YieldResult` objects).
    monolithic_repaired_yield, chiplet_repaired_yield:
        Optional fraction of each batch that is collision-free *only*
        thanks to post-fabrication repair (set when the input yields
        came through a tuned pipeline;  ``compare=False`` keeps the
        untuned comparison's golden summaries and cache identities
        unchanged).  Both input yields already *include* the repaired
        dies; these fields break out how much of them repair
        contributed.
    gain:
        ``mcm_devices / monolithic_devices`` (``inf`` when the monolithic
        yield is zero).
    """

    monolithic_qubits: int
    chiplet_qubits: int
    grid_rows: int
    grid_cols: int
    batch_size: int
    monolithic_yield: float
    chiplet_yield: float
    monolithic_devices: float
    mcm_devices: float
    monolithic_yield_ci: tuple[float, float] | None = None
    chiplet_yield_ci: tuple[float, float] | None = None
    monolithic_repaired_yield: float | None = field(default=None, compare=False)
    chiplet_repaired_yield: float | None = field(default=None, compare=False)

    @property
    def monolithic_repaired_devices(self) -> float | None:
        """Monolithic devices that exist only thanks to repair."""
        if self.monolithic_repaired_yield is None:
            return None
        return self.monolithic_repaired_yield * self.batch_size

    @property
    def mcm_repaired_devices(self) -> float | None:
        """Eq. 1 MCM count attributable to repaired chiplets."""
        if self.chiplet_repaired_yield is None:
            return None
        return mcm_output_upper_bound(
            self.chiplet_repaired_yield,
            self.batch_size,
            self.monolithic_qubits,
            self.chiplet_qubits,
            self.grid_rows,
            self.grid_cols,
        )

    @property
    def gain(self) -> float:
        """Manufacturing-output gain of the MCM route over the monolith."""
        if self.monolithic_devices == 0:
            return float("inf")
        return self.mcm_devices / self.monolithic_devices

    @property
    def monolithic_devices_ci(self) -> tuple[float, float] | None:
        """Device-count interval implied by the monolithic yield CI."""
        if self.monolithic_yield_ci is None:
            return None
        low, high = self.monolithic_yield_ci
        return (low * self.batch_size, high * self.batch_size)

    @property
    def mcm_devices_ci(self) -> tuple[float, float] | None:
        """MCM-count interval implied by the chiplet yield CI (Eq. 1)."""
        if self.chiplet_yield_ci is None:
            return None
        low, high = self.chiplet_yield_ci
        eq1 = lambda y: mcm_output_upper_bound(
            y,
            self.batch_size,
            self.monolithic_qubits,
            self.chiplet_qubits,
            self.grid_rows,
            self.grid_cols,
        )
        return (eq1(low), eq1(high))

    @property
    def gain_ci(self) -> tuple[float, float] | None:
        """Conservative interval on the output gain.

        Worst case over both input intervals: lowest MCM count against
        the highest monolithic count, and vice versa (``inf`` when the
        monolithic bound reaches zero).
        """
        mcm_ci = self.mcm_devices_ci
        mono_ci = self.monolithic_devices_ci
        if mcm_ci is None or mono_ci is None:
            return None
        low = mcm_ci[0] / mono_ci[1] if mono_ci[1] > 0 else float("inf")
        high = mcm_ci[1] / mono_ci[0] if mono_ci[0] > 0 else float("inf")
        return (low, high)


def mcm_output_upper_bound(
    chiplet_yield: float,
    batch_size: int,
    monolithic_qubits: int,
    chiplet_qubits: int,
    grid_rows: int,
    grid_cols: int,
) -> float:
    """Equation 1: upper bound on complete MCMs from the shared wafer budget."""
    if not 0.0 <= chiplet_yield <= 1.0:
        raise ValueError("chiplet_yield must be a probability")
    if min(batch_size, monolithic_qubits, chiplet_qubits, grid_rows, grid_cols) <= 0:
        raise ValueError("all size parameters must be positive")
    chiplet_batch = batch_size * monolithic_qubits / chiplet_qubits
    return chiplet_yield * chiplet_batch / (grid_rows * grid_cols)


def monolithic_output(monolithic_yield: float, batch_size: int) -> float:
    """Expected number of collision-free monolithic devices from the batch."""
    if not 0.0 <= monolithic_yield <= 1.0:
        raise ValueError("monolithic_yield must be a probability")
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    return monolithic_yield * batch_size


def compare_fabrication_output(
    monolithic_yield: float,
    chiplet_yield: float,
    batch_size: int,
    monolithic_qubits: int,
    chiplet_qubits: int,
    grid_rows: int,
    grid_cols: int,
    monolithic_yield_ci: tuple[float, float] | None = None,
    chiplet_yield_ci: tuple[float, float] | None = None,
    monolithic_repaired_yield: float | None = None,
    chiplet_repaired_yield: float | None = None,
) -> FabricationOutput:
    """Full Section V-C comparison for one (monolith, chiplet, MCM) triple."""
    if grid_rows * grid_cols * chiplet_qubits != monolithic_qubits:
        raise ValueError(
            "the MCM must contain the same number of qubits as the monolithic device"
        )
    return FabricationOutput(
        monolithic_qubits=monolithic_qubits,
        chiplet_qubits=chiplet_qubits,
        grid_rows=grid_rows,
        grid_cols=grid_cols,
        batch_size=batch_size,
        monolithic_yield=monolithic_yield,
        chiplet_yield=chiplet_yield,
        monolithic_devices=monolithic_output(monolithic_yield, batch_size),
        mcm_devices=mcm_output_upper_bound(
            chiplet_yield,
            batch_size,
            monolithic_qubits,
            chiplet_qubits,
            grid_rows,
            grid_cols,
        ),
        monolithic_yield_ci=monolithic_yield_ci,
        chiplet_yield_ci=chiplet_yield_ci,
        monolithic_repaired_yield=monolithic_repaired_yield,
        chiplet_repaired_yield=chiplet_repaired_yield,
    )


def _repaired_fraction(result: "YieldResult") -> float | None:
    """Repaired fraction of a result's batch (``None`` for untuned results).

    Duck-typed on the ``num_repaired`` attribute so this module keeps
    its no-runtime-import relationship with the yield model.
    """
    num_repaired = getattr(result, "num_repaired", None)
    if num_repaired is None:
        return None
    return num_repaired / result.samples_used


def fabrication_output_from_results(
    monolithic_result: "YieldResult",
    chiplet_result: "YieldResult",
    grid_rows: int,
    grid_cols: int,
    batch_size: int | None = None,
) -> FabricationOutput:
    """Section V-C comparison straight from two Monte-Carlo yield results.

    Wires the results' confidence intervals into the output comparison,
    so the worked example reports device counts and the ~7.7x gain with
    error bars.  ``batch_size`` defaults to the monolithic result's
    sample count (for adaptive runs the two results may have used
    different sample counts; the wafer budget ``B`` of Eq. 1 is a free
    parameter, not tied to either).  Results produced by a tuned
    pipeline (:class:`~repro.core.yield_model.RepairedYieldResult`)
    additionally populate the repaired-die breakout fields.
    """
    return compare_fabrication_output(
        monolithic_yield=monolithic_result.estimate,
        chiplet_yield=chiplet_result.estimate,
        batch_size=batch_size if batch_size is not None else monolithic_result.samples_used,
        monolithic_qubits=monolithic_result.num_qubits,
        chiplet_qubits=chiplet_result.num_qubits,
        grid_rows=grid_rows,
        grid_cols=grid_cols,
        monolithic_yield_ci=(monolithic_result.ci_low, monolithic_result.ci_high),
        chiplet_yield_ci=(chiplet_result.ci_low, chiplet_result.ci_high),
        monolithic_repaired_yield=_repaired_fraction(monolithic_result),
        chiplet_repaired_yield=_repaired_fraction(chiplet_result),
    )
