"""Average two-qubit infidelity comparison machinery (paper Fig. 9).

The paper compares MCM and monolithic architectures through ``E_avg``: the
two-qubit gate infidelity averaged over every coupled qubit pair of a
device, itself averaged over all devices in the (scaled) collision-free
yield.  A ratio ``E_avg,MCM / E_avg,Mono`` below one means the modular
system offers lower average error than the monolith of the same size.

Four link-quality scenarios are studied: the state of the art
(``e_link / e_chip ~ 4.17``) and projected improvements with the ratio
reduced to 3, 2 and 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.device.noise import (
    LinkErrorModel,
    LINK_MEAN_INFIDELITY,
    LINK_MEDIAN_INFIDELITY,
    ON_CHIP_MEAN_INFIDELITY,
)

__all__ = [
    "LinkScenario",
    "EavgComparison",
    "default_link_scenarios",
    "average_infidelity",
    "infidelity_ratio",
]


@dataclass(frozen=True)
class LinkScenario:
    """One link-quality scenario of Fig. 9.

    Attributes
    ----------
    name:
        Scenario label, e.g. ``"state-of-art"`` or ``"elink=2echip"``.
    ratio:
        Target ``e_link / e_chip`` mean-error ratio.
    link_model:
        The link-error distribution realising the scenario.
    """

    name: str
    ratio: float
    link_model: LinkErrorModel


def default_link_scenarios(
    on_chip_mean: float = ON_CHIP_MEAN_INFIDELITY,
    improvement_ratios: Sequence[float] = (3.0, 2.0, 1.0),
) -> list[LinkScenario]:
    """The paper's four Fig. 9 scenarios.

    The first scenario uses the published flip-chip error distribution
    unchanged (mean 7.5 %, ratio ~4.17 against the on-chip mean); the
    remaining scenarios rescale the distribution so its mean equals
    ``ratio * on_chip_mean``.
    """
    base = LinkErrorModel.from_mean_median(
        mean=LINK_MEAN_INFIDELITY, median=LINK_MEDIAN_INFIDELITY
    )
    scenarios = [
        LinkScenario(
            name="state-of-art",
            ratio=base.mean / on_chip_mean,
            link_model=base,
        )
    ]
    ratios = np.asarray(improvement_ratios, dtype=float)
    if ratios.size:
        target_means = ratios * on_chip_mean
        if np.any(target_means <= 0):
            raise ValueError("target_mean must be positive")
        # All rescaled log-normal locations in one vectorised pass; each
        # scaled model keeps the base sigma, so only mu shifts (this is
        # `LinkErrorModel.scaled_to_mean` applied to every ratio at once
        # — see benchmarks/bench_fidelity.py for the measured speedup and
        # the value-identity check against the per-ratio loop).
        mus = base.mu + np.log(target_means / base.mean)
        scenarios.extend(
            LinkScenario(
                name=f"elink={ratio:g}echip",
                ratio=ratio,
                link_model=LinkErrorModel(
                    mu=mu, sigma=base.sigma, max_infidelity=base.max_infidelity
                ),
            )
            for ratio, mu in zip(ratios.tolist(), mus.tolist())
        )
    return scenarios


def average_infidelity(per_device_averages: Iterable[float]) -> float:
    """Mean of per-device average infidelities (``nan`` when empty)."""
    values = np.asarray(list(per_device_averages), dtype=float)
    if values.size == 0:
        return float("nan")
    return float(values.mean())


def infidelity_ratio(mcm_eavg: float, mono_eavg: float) -> float:
    """``E_avg,MCM / E_avg,Mono`` handling the zero-yield monolith case."""
    if np.isnan(mono_eavg) or mono_eavg == 0.0:
        return float("nan")
    return mcm_eavg / mono_eavg


@dataclass(frozen=True)
class EavgComparison:
    """One cell of the Fig. 9 heat-map.

    Attributes
    ----------
    chiplet_size:
        Chiplet size in qubits.
    grid:
        MCM dimensions ``(n, n)``.
    num_qubits:
        Total system size.
    scenario:
        Link-quality scenario name.
    mcm_eavg, mono_eavg:
        Average two-qubit infidelity of the modular and monolithic systems
        (``nan`` when the monolithic yield is zero).
    """

    chiplet_size: int
    grid: tuple[int, int]
    num_qubits: int
    scenario: str
    mcm_eavg: float
    mono_eavg: float

    @property
    def ratio(self) -> float:
        """``E_avg,MCM / E_avg,Mono`` (``nan`` for zero-yield monoliths)."""
        return infidelity_ratio(self.mcm_eavg, self.mono_eavg)

    @property
    def mcm_wins(self) -> bool:
        """True when the MCM has lower average infidelity than the monolith."""
        ratio = self.ratio
        return bool(not np.isnan(ratio) and ratio < 1.0)
