"""MCM configuration counting (paper Section V-B, Fig. 6).

Once a batch of identically-designed chiplets has been screened, the number
of distinct ways to populate a ``k x m`` MCM grows factorially with the
number of slots (ordered selection of dies from the collision-free bin),
while the number of complete modules that can be assembled from the bin
shrinks as ``available // slots``.  Fig. 6 plots both quantities against
the MCM size for 20-qubit chiplets at the state-of-the-art precision
(sigma_f = 0.014 GHz, ~69.4 % chiplet yield, batch of 10^5 dies).

Counts are returned in log10 to avoid overflowing Python floats (a 7 x 7
module drawn from ~69 000 dies has ~10^237 configurations).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import lgamma, log10

__all__ = [
    "ConfigurationPoint",
    "log10_configurations",
    "max_assembled_mcms",
    "configuration_curve",
]

_LOG10_E = log10(2.718281828459045)


@dataclass(frozen=True)
class ConfigurationPoint:
    """Configuration statistics for one square MCM size.

    Attributes
    ----------
    grid:
        MCM dimensions ``(m, m)``.
    mcm_qubits:
        Total qubits in the module.
    log10_configurations:
        log10 of the number of ordered chiplet placements available.
    max_mcms:
        Upper bound on the number of modules assembled from the bin.
    """

    grid: tuple[int, int]
    mcm_qubits: int
    log10_configurations: float
    max_mcms: int


def log10_configurations(available_chiplets: int, slots: int) -> float:
    """log10 of the number of ordered ways to fill ``slots`` from the bin.

    This is the falling factorial ``P(available, slots)``; the paper
    describes the growth of this quantity as "factorial" in the MCM size.
    """
    if available_chiplets < 0 or slots < 0:
        raise ValueError("counts must be non-negative")
    if slots > available_chiplets:
        return float("-inf")
    log_value = lgamma(available_chiplets + 1) - lgamma(available_chiplets - slots + 1)
    return log_value * _LOG10_E


def max_assembled_mcms(available_chiplets: int, slots: int) -> int:
    """Upper bound on complete MCMs assembled from the collision-free bin."""
    if slots <= 0:
        raise ValueError("slots must be positive")
    if available_chiplets < 0:
        raise ValueError("available_chiplets must be non-negative")
    return available_chiplets // slots


def configuration_curve(
    chiplet_yield: float = 0.694,
    batch_size: int = 100_000,
    chiplet_qubits: int = 20,
    max_grid: int = 7,
) -> list[ConfigurationPoint]:
    """The Fig. 6 curves: configurations and assembled-module bound vs. size.

    Parameters
    ----------
    chiplet_yield:
        Collision-free chiplet yield (the paper quotes ~69.4 % for 20-qubit
        chiplets at sigma_f = 0.014 GHz).
    batch_size:
        Fabrication batch size (the paper uses 10^5 dies).
    chiplet_qubits:
        Qubits per chiplet.
    max_grid:
        Largest square dimension ``m`` to include.
    """
    if not 0.0 <= chiplet_yield <= 1.0:
        raise ValueError("chiplet_yield must be a probability")
    available = int(round(chiplet_yield * batch_size))
    points = []
    for m in range(2, max_grid + 1):
        slots = m * m
        points.append(
            ConfigurationPoint(
                grid=(m, m),
                mcm_qubits=slots * chiplet_qubits,
                log10_configurations=log10_configurations(available, slots),
                max_mcms=max_assembled_mcms(available, slots),
            )
        )
    return points
