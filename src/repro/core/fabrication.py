"""Fabrication-variation model for fixed-frequency transmons.

Josephson-junction processing imprecision shifts each qubit's frequency
away from its design target.  The paper (Section III-C) models this as an
independent Gaussian scatter with standard deviation ``sigma_f`` around the
ideal frequency:

* ``sigma_f = 0.1323 GHz`` — spread directly after fabrication,
* ``sigma_f = 0.014 GHz``  — after laser tuning (state of the art, used for
  all architecture evaluation in the paper),
* ``sigma_f = 0.006 GHz``  — projected precision needed to scale a
  monolithic device past ~1000 qubits.

:class:`FabricationModel` turns a :class:`FrequencyAllocation` into batches
of sampled devices, optionally applying post-fabrication laser tuning that
shrinks the effective scatter.

Sampling is split into :meth:`FabricationModel.standard_draws` (the
sigma-independent standard-normal base draws ``z``) and the affine
scaling ``ideal + sigma * z`` — bitwise identical to the historical
``rng.normal(0, sigma, size)`` call (NumPy computes exactly
``loc + scale * standard_normal``; pinned by the property suite in
``tests/test_sample_bank.py``).  The split lets callers that fabricate
the same seeded batch at many sigmas share the base draws through
:mod:`repro.core.sample_bank` instead of re-sampling per grid cell.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.frequencies import FrequencyAllocation
from repro.core.sample_bank import banked_standard_normal
from repro.engine.phases import phase

__all__ = [
    "FabricationModel",
    "SIGMA_AS_FABRICATED_GHZ",
    "SIGMA_LASER_TUNED_GHZ",
    "SIGMA_SCALING_TARGET_GHZ",
]

#: Frequency scatter straight out of fabrication (GHz), from Hertzberg et al.
SIGMA_AS_FABRICATED_GHZ = 0.1323

#: Frequency scatter after laser tuning (GHz) — the paper's working value.
SIGMA_LASER_TUNED_GHZ = 0.014

#: Precision the paper identifies as necessary for >1000-qubit monoliths.
SIGMA_SCALING_TARGET_GHZ = 0.006


@dataclass(frozen=True)
class FabricationModel:
    """Gaussian frequency-scatter model.

    Attributes
    ----------
    sigma_ghz:
        Standard deviation of the scatter around each ideal frequency.
    """

    sigma_ghz: float = SIGMA_LASER_TUNED_GHZ

    def __post_init__(self) -> None:
        if self.sigma_ghz < 0:
            raise ValueError("sigma_ghz must be non-negative")

    def sample_device(
        self, allocation: FrequencyAllocation, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample the frequencies of a single fabricated device."""
        return self.sample_batch(allocation, 1, rng)[0]

    def standard_draws(
        self,
        allocation: FrequencyAllocation,
        length: int,
        rng: np.random.Generator,
        draw_seed=None,
    ) -> np.ndarray:
        """The sigma-independent standard-normal base draws of a batch.

        Returns a ``(length, num_qubits)`` array of N(0, 1) draws; the
        fabricated frequencies are ``ideal + sigma_ghz * draws``.  With a
        ``draw_seed`` — the exact seed ``rng`` was freshly constructed
        from — the draws go through the process-wide sample bank, so
        sweeps that revisit the same seeded batch at another sigma (or
        detuning step) reuse them instead of re-sampling.  Banked arrays
        are read-only; scale them, don't mutate them.
        """
        return banked_standard_normal(
            draw_seed, (length, allocation.num_qubits), rng
        )

    def sample_batch(
        self,
        allocation: FrequencyAllocation,
        batch_size: int,
        rng: np.random.Generator,
        draw_seed=None,
    ) -> np.ndarray:
        """Sample a batch of fabricated devices.

        Parameters
        ----------
        allocation:
            Frequency plan providing the per-qubit ideal frequencies.
        batch_size:
            Number of devices to fabricate.
        rng:
            Source of randomness.
        draw_seed:
            Optional content identity of the base draws: the exact seed
            (int or tuple) ``rng`` was freshly constructed from, enabling
            the common-random-number sample bank
            (:mod:`repro.core.sample_bank`).  Omit for generators with
            history; the bank verifies the contract and falls back to
            direct sampling on any mismatch.

        Returns
        -------
        numpy.ndarray
            Array of shape ``(batch_size, num_qubits)`` of actual
            frequencies in GHz.
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        with phase("sample"):
            draws = self.standard_draws(
                allocation, batch_size, rng, draw_seed=draw_seed
            )
            # z * sigma (fresh array: draws may be a banked, read-only
            # entry) then an in-place broadcast add of the ideal row —
            # bitwise equal to ``ideal + sigma * z`` (IEEE multiply and
            # add are commutative) with one fewer full-size temporary.
            frequencies = draws * self.sigma_ghz
            frequencies += allocation.ideal_frequencies
            return frequencies

    def with_laser_tuning(self, tuned_sigma_ghz: float = SIGMA_LASER_TUNED_GHZ) -> "FabricationModel":
        """Return a model describing the post-laser-tuning precision.

        Laser annealing can only improve precision, so the tuned scatter is
        capped at the current value.
        """
        return FabricationModel(sigma_ghz=min(self.sigma_ghz, tuned_sigma_ghz))
