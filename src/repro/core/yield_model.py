"""Monte-Carlo collision-free yield model (paper Section IV-B, Fig. 4).

The simulation virtually fabricates a batch of heavy-hex devices, samples
their qubit frequencies from the fabrication model, evaluates the seven
Table I collision criteria, and reports the fraction of devices with no
collision — the *collision-free yield*.

Key entry points
----------------
:func:`simulate_yield`
    Yield for one topology / one (sigma_f, step) parameter point.
:func:`yield_vs_qubits`
    Yield curve over a range of device sizes (one curve of Fig. 4).
:func:`detuning_sweep`
    The full Fig. 4 grid: yield vs. qubits for several detuning steps and
    fabrication precisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.collisions import CollisionThresholds, collision_free_mask
from repro.core.fabrication import FabricationModel
from repro.core.frequencies import (
    FrequencyAllocation,
    FrequencySpec,
    allocate_heavy_hex_frequencies,
)
from repro.topology.heavy_hex import HeavyHexLattice, heavy_hex_by_qubit_count

__all__ = [
    "YieldResult",
    "YieldCurve",
    "simulate_yield",
    "simulate_yield_with_devices",
    "yield_vs_qubits",
    "detuning_sweep",
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_SIZE_GRID",
]

#: Batch size used for the paper's Fig. 4 Monte-Carlo runs.
DEFAULT_BATCH_SIZE = 1000

#: Device sizes (qubits) probed by the yield-vs-size curves.
DEFAULT_SIZE_GRID = (
    5, 10, 16, 20, 27, 40, 50, 65, 80, 100, 127, 160, 200, 250, 300,
    400, 500, 650, 800, 1000,
)


@dataclass(frozen=True)
class YieldResult:
    """Collision-free yield at a single parameter point.

    Attributes
    ----------
    num_qubits:
        Device size in qubits.
    sigma_ghz:
        Fabrication precision used for the batch.
    step_ghz:
        Ideal detuning between F0/F1/F2.
    batch_size:
        Number of simulated devices.
    num_collision_free:
        Devices that passed every Table I criterion.
    """

    num_qubits: int
    sigma_ghz: float
    step_ghz: float
    batch_size: int
    num_collision_free: int

    @property
    def collision_free_yield(self) -> float:
        """Fraction of devices with no frequency collision."""
        return self.num_collision_free / self.batch_size


@dataclass
class YieldCurve:
    """Collision-free yield as a function of device size."""

    sigma_ghz: float
    step_ghz: float
    points: list[YieldResult] = field(default_factory=list)

    @property
    def sizes(self) -> list[int]:
        """Device sizes along the curve."""
        return [p.num_qubits for p in self.points]

    @property
    def yields(self) -> list[float]:
        """Collision-free yields along the curve."""
        return [p.collision_free_yield for p in self.points]

    def yield_at(self, num_qubits: int) -> float:
        """Yield for a specific size (raises if the size was not simulated)."""
        for point in self.points:
            if point.num_qubits == num_qubits:
                return point.collision_free_yield
        raise KeyError(f"size {num_qubits} not present in the curve")


def simulate_yield(
    allocation: FrequencyAllocation,
    fabrication: FabricationModel,
    batch_size: int = DEFAULT_BATCH_SIZE,
    rng: np.random.Generator | None = None,
    thresholds: CollisionThresholds | None = None,
) -> YieldResult:
    """Monte-Carlo collision-free yield for one topology.

    Parameters
    ----------
    allocation:
        Frequency plan of the device under test.
    fabrication:
        Gaussian frequency-scatter model.
    batch_size:
        Number of devices to fabricate virtually.
    rng:
        Source of randomness (a fresh default generator when omitted).
    thresholds:
        Collision windows; defaults to the Table I values.
    """
    rng = rng or np.random.default_rng()
    frequencies = fabrication.sample_batch(allocation, batch_size, rng)
    mask = collision_free_mask(allocation, frequencies, thresholds)
    return YieldResult(
        num_qubits=allocation.num_qubits,
        sigma_ghz=fabrication.sigma_ghz,
        step_ghz=allocation.spec.step_ghz,
        batch_size=batch_size,
        num_collision_free=int(mask.sum()),
    )


def simulate_yield_with_devices(
    allocation: FrequencyAllocation,
    fabrication: FabricationModel,
    batch_size: int = DEFAULT_BATCH_SIZE,
    rng: np.random.Generator | None = None,
    thresholds: CollisionThresholds | None = None,
) -> tuple[YieldResult, np.ndarray]:
    """Like :func:`simulate_yield` but also return the surviving devices.

    Returns
    -------
    tuple
        ``(result, frequencies)`` where ``frequencies`` has shape
        ``(num_collision_free, num_qubits)`` and holds the sampled frequency
        profile of every collision-free device — the raw material for
        known-good-die binning and MCM assembly.
    """
    rng = rng or np.random.default_rng()
    frequencies = fabrication.sample_batch(allocation, batch_size, rng)
    mask = collision_free_mask(allocation, frequencies, thresholds)
    result = YieldResult(
        num_qubits=allocation.num_qubits,
        sigma_ghz=fabrication.sigma_ghz,
        step_ghz=allocation.spec.step_ghz,
        batch_size=batch_size,
        num_collision_free=int(mask.sum()),
    )
    return result, frequencies[mask]


def yield_vs_qubits(
    sigma_ghz: float,
    step_ghz: float,
    sizes: tuple[int, ...] = DEFAULT_SIZE_GRID,
    batch_size: int = DEFAULT_BATCH_SIZE,
    seed: int | None = 7,
    thresholds: CollisionThresholds | None = None,
    lattices: dict[int, HeavyHexLattice] | None = None,
) -> YieldCurve:
    """Collision-free yield curve over a range of heavy-hex device sizes.

    Parameters
    ----------
    sigma_ghz:
        Fabrication precision of the batch.
    step_ghz:
        Ideal detuning between F0, F1 and F2.
    sizes:
        Device sizes (qubits) to probe.
    batch_size:
        Devices fabricated per size.
    seed:
        Seed for the Monte-Carlo sampling (``None`` for non-deterministic).
    thresholds:
        Collision windows.
    lattices:
        Optional cache mapping size -> pre-built lattice, to avoid repeating
        the lattice search across parameter points.
    """
    rng = np.random.default_rng(seed)
    fabrication = FabricationModel(sigma_ghz=sigma_ghz)
    spec = FrequencySpec(step_ghz=step_ghz)
    curve = YieldCurve(sigma_ghz=sigma_ghz, step_ghz=step_ghz)
    for size in sizes:
        if lattices is not None and size in lattices:
            lattice = lattices[size]
        else:
            lattice = heavy_hex_by_qubit_count(size)
            if lattices is not None:
                lattices[size] = lattice
        allocation = allocate_heavy_hex_frequencies(lattice, spec=spec)
        curve.points.append(
            simulate_yield(allocation, fabrication, batch_size, rng, thresholds)
        )
    return curve


def detuning_sweep(
    steps_ghz: tuple[float, ...] = (0.04, 0.05, 0.06, 0.07),
    sigmas_ghz: tuple[float, ...] = (0.1323, 0.014, 0.006),
    sizes: tuple[int, ...] = DEFAULT_SIZE_GRID,
    batch_size: int = DEFAULT_BATCH_SIZE,
    seed: int | None = 7,
) -> dict[tuple[float, float], YieldCurve]:
    """The full Fig. 4 grid: one yield curve per (step, sigma) combination.

    Returns
    -------
    dict
        Mapping ``(step_ghz, sigma_ghz) -> YieldCurve``.
    """
    lattices: dict[int, HeavyHexLattice] = {}
    curves: dict[tuple[float, float], YieldCurve] = {}
    for step in steps_ghz:
        for sigma in sigmas_ghz:
            curves[(step, sigma)] = yield_vs_qubits(
                sigma_ghz=sigma,
                step_ghz=step,
                sizes=sizes,
                batch_size=batch_size,
                seed=seed,
                lattices=lattices,
            )
    return curves
