"""Monte-Carlo collision-free yield model (paper Section IV-B, Fig. 4).

The simulation virtually fabricates a batch of devices of any registered
topology (heavy-hex by default; see
:data:`repro.core.architecture.ARCHITECTURES`), samples their qubit
frequencies from the fabrication model, evaluates the seven Table I
collision criteria, and reports the fraction of devices with no
collision — the *collision-free yield*.  Every :class:`YieldResult`
carries a binomial confidence interval (Wilson by default) alongside the
point estimate.

Key entry points
----------------
:func:`simulate_yield`
    Yield for one topology / one (sigma_f, step) parameter point.
:func:`simulate_yield_streaming`
    The same estimate in O(chunk) instead of O(batch) memory, from
    spawn-seeded chunks (bit-identical to the monolithic batch).
:func:`simulate_yield_adaptive`
    Chunked sampling with an adaptive stopping rule: draw chunks until
    the CI half-width reaches a target or a hard sample cap.
:func:`yield_vs_qubits`
    Yield curve over a range of device sizes (one curve of Fig. 4).
:func:`detuning_sweep`
    The full Fig. 4 grid: yield vs. qubits for several detuning steps and
    fabrication precisions.

The sweep entry points accept an ``executor`` hook — any object with a
``map_calls(fn, kwargs_list, name=...)`` method, in practice a
:class:`repro.engine.ExecutionEngine` — and submit one task per
(sigma, step, size) point.  Each point derives its own seed from the
master seed by position (``np.random.SeedSequence.spawn``), so parallel
and sequential runs are bit-identical at the same seed.  Within one
point, the chunked estimators derive per-chunk seeds the same way (see
:mod:`repro.stats.streaming`), so a streamed, adaptive, or
chunk-parallel run observes literally the same samples as materialising
the whole batch at once.

Every entry point also accepts a :class:`repro.tuning.TuningOptions`:
when set, collided devices are handed to the post-fabrication repair
subsystem (:mod:`repro.tuning`) before yield is counted, and the result
is a :class:`RepairedYieldResult` that reports the as-fabricated and
repaired populations separately.  Repair randomness continues each
chunk's own generator after fabrication sampling, so the tuned pipeline
inherits the full parallel==sequential determinism contract; when the
option is unset the kwargs of every submitted point are byte-identical
to the untuned pipeline (see :func:`_tuning_kwargs`), keeping historical
engine cache keys and goldens untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.architecture import DEFAULT_TOPOLOGY, get_architecture
from repro.core.collisions import CollisionThresholds, collision_free_mask
from repro.core.fabrication import FabricationModel
from repro.core.frequencies import FrequencyAllocation

# Shared with the engine: positional child-seed derivation (execution order
# never changes a point's stream) and the executor dispatch.  Note this
# imports the repro.engine package (stdlib + numpy only, no third-party
# deps); core calls nothing beyond these two helpers at runtime.
from repro.engine.dispatch import run_calls as _run_points
from repro.engine.seeding import spawn_seeds as _point_seeds
from repro.stats import (
    DEFAULT_CHUNK_SIZE,
    DEFAULT_CONFIDENCE,
    StatsOptions,
    StreamingEstimator,
    adaptive_estimate,
    binomial_ci,
    chunk_layout,
    chunk_seed,
)
from repro.topology.base import Lattice
from repro.tuning import TuningOptions, repair_batch

__all__ = [
    "YieldResult",
    "RepairedYieldResult",
    "YieldCurve",
    "simulate_yield",
    "simulate_yield_point",
    "simulate_yield_with_devices",
    "simulate_yield_streaming",
    "simulate_yield_adaptive",
    "simulate_yield_chunk",
    "simulate_yield_chunks",
    "materialize_seeded_batch",
    "yield_vs_qubits",
    "detuning_sweep",
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_SIZE_GRID",
]

#: Batch size used for the paper's Fig. 4 Monte-Carlo runs.
DEFAULT_BATCH_SIZE = 1000

#: Device sizes (qubits) probed by the yield-vs-size curves.
DEFAULT_SIZE_GRID = (
    5, 10, 16, 20, 27, 40, 50, 65, 80, 100, 127, 160, 200, 250, 300,
    400, 500, 650, 800, 1000,
)


@dataclass(frozen=True)
class YieldResult:
    """Collision-free yield at a single parameter point, with error bars.

    Attributes
    ----------
    num_qubits:
        Device size in qubits.
    sigma_ghz:
        Fabrication precision used for the batch.
    step_ghz:
        Ideal detuning between F0/F1/F2.
    batch_size:
        Number of simulated devices (for adaptive runs: the samples the
        stopping rule actually drew, also exposed as ``samples_used``).
    num_collision_free:
        Devices that passed every Table I criterion.
    ci_low, ci_high:
        Binomial confidence interval on the yield.  Computed from the
        counts on construction when not supplied, so every result —
        whatever path produced it — satisfies
        ``ci_low <= estimate <= ci_high``.
    confidence:
        Two-sided confidence level of the interval.
    ci_method:
        Interval construction (``"wilson"`` or ``"jeffreys"``).
    """

    num_qubits: int
    sigma_ghz: float
    step_ghz: float
    batch_size: int
    num_collision_free: int
    ci_low: float | None = None
    ci_high: float | None = None
    confidence: float = DEFAULT_CONFIDENCE
    ci_method: str = "wilson"

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if not 0 <= self.num_collision_free <= self.batch_size:
            raise ValueError("num_collision_free must lie in [0, batch_size]")
        if self.ci_low is None or self.ci_high is None:
            interval = binomial_ci(
                self.num_collision_free,
                self.batch_size,
                confidence=self.confidence,
                method=self.ci_method,
            )
            object.__setattr__(self, "ci_low", interval.low)
            object.__setattr__(self, "ci_high", interval.high)

    @property
    def collision_free_yield(self) -> float:
        """Fraction of devices with no frequency collision."""
        return self.num_collision_free / self.batch_size

    @property
    def estimate(self) -> float:
        """The point estimate the interval brackets (alias)."""
        return self.collision_free_yield

    @property
    def samples_used(self) -> int:
        """Monte-Carlo samples behind the estimate (alias of batch_size)."""
        return self.batch_size

    @property
    def ci_half_width(self) -> float:
        """Half-width of the confidence interval."""
        return (self.ci_high - self.ci_low) / 2.0


@dataclass(frozen=True)
class RepairedYieldResult(YieldResult):
    """A yield point evaluated through the post-fabrication repair stage.

    ``num_collision_free`` (and therefore ``collision_free_yield``)
    counts every good die — as-fabricated survivors *plus* the dies the
    tuner recovered — while the extra fields keep the repaired
    population separately accountable.  Only tuned pipelines produce
    this type, so untuned results (and their goldens) are structurally
    unchanged.

    Attributes
    ----------
    num_repaired:
        Dies that are collision-free only thanks to repair.
    tuned_qubits:
        Qubits that received at least one accepted shift, summed over
        the batch.
    total_tunes:
        Accepted tuning shots summed over the batch.
    """

    num_repaired: int = 0
    tuned_qubits: int = 0
    total_tunes: int = 0

    @property
    def num_as_fab_free(self) -> int:
        """Dies that were collision-free straight out of fabrication."""
        return self.num_collision_free - self.num_repaired

    @property
    def as_fab_yield(self) -> float:
        """Collision-free yield before any repair."""
        return self.num_as_fab_free / self.batch_size

    @property
    def repaired_yield(self) -> float:
        """Collision-free yield after repair (alias of the estimate)."""
        return self.collision_free_yield


@dataclass
class YieldCurve:
    """Collision-free yield as a function of device size.

    ``points`` is append-only and holds each size at most once — that is
    the contract the O(1) size lookups rely on.  The backing index is
    rebuilt when points were appended since the last lookup (and once
    more on a missed lookup); replacing or reordering entries in place is
    unsupported and may serve a stale point.
    """

    sigma_ghz: float
    step_ghz: float
    points: list[YieldResult] = field(default_factory=list)
    _index: dict[int, YieldResult] = field(
        default_factory=dict, repr=False, compare=False
    )

    def _point_index(self, rebuild: bool = False) -> dict[int, YieldResult]:
        if rebuild or len(self._index) != len(self.points):
            self._index.clear()
            self._index.update({p.num_qubits: p for p in self.points})
        return self._index

    @property
    def sizes(self) -> list[int]:
        """Device sizes along the curve."""
        return [p.num_qubits for p in self.points]

    @property
    def yields(self) -> list[float]:
        """Collision-free yields along the curve."""
        return [p.collision_free_yield for p in self.points]

    def at_size(self, num_qubits: int) -> YieldResult:
        """The full :class:`YieldResult` for one size, via an O(1) lookup."""
        try:
            return self._point_index()[num_qubits]
        except KeyError:
            pass
        try:
            return self._point_index(rebuild=True)[num_qubits]
        except KeyError:
            raise KeyError(f"size {num_qubits} not present in the curve") from None

    def yield_at(self, num_qubits: int) -> float:
        """Yield for a specific size (raises if the size was not simulated)."""
        return self.at_size(num_qubits).collision_free_yield


def simulate_yield(
    allocation: FrequencyAllocation,
    fabrication: FabricationModel,
    batch_size: int = DEFAULT_BATCH_SIZE,
    rng: np.random.Generator | None = None,
    thresholds: CollisionThresholds | None = None,
    confidence: float = DEFAULT_CONFIDENCE,
    ci_method: str = "wilson",
    tuning: TuningOptions | None = None,
    draw_seed=None,
) -> YieldResult:
    """Monte-Carlo collision-free yield for one topology.

    Parameters
    ----------
    allocation:
        Frequency plan of the device under test.
    fabrication:
        Gaussian frequency-scatter model.
    batch_size:
        Number of devices to fabricate virtually.
    rng:
        Source of randomness (a fresh default generator when omitted).
    thresholds:
        Collision windows; defaults to the Table I values.
    confidence, ci_method:
        Parameters of the confidence interval attached to the result.
    tuning:
        Optional post-fabrication repair stage; collided devices are
        repaired (continuing ``rng``) before yield is counted, and the
        result is a :class:`RepairedYieldResult`.
    draw_seed:
        Optional sample-bank key: the exact seed ``rng`` was freshly
        constructed from (see :mod:`repro.core.sample_bank`).  Banked
        hits restore the post-sampling generator state, so the repair
        stream continuing ``rng`` stays bit-identical.
    """
    rng = rng or np.random.default_rng()
    frequencies = fabrication.sample_batch(
        allocation, batch_size, rng, draw_seed=draw_seed
    )
    if tuning is not None:
        outcome = repair_batch(allocation, frequencies, tuning, rng, thresholds)
        return RepairedYieldResult(
            num_qubits=allocation.num_qubits,
            sigma_ghz=fabrication.sigma_ghz,
            step_ghz=allocation.spec.step_ghz,
            batch_size=batch_size,
            num_collision_free=outcome.num_free,
            confidence=confidence,
            ci_method=ci_method,
            num_repaired=outcome.num_repaired,
            tuned_qubits=outcome.tuned_qubits,
            total_tunes=outcome.total_tunes,
        )
    mask = collision_free_mask(allocation, frequencies, thresholds)
    return YieldResult(
        num_qubits=allocation.num_qubits,
        sigma_ghz=fabrication.sigma_ghz,
        step_ghz=allocation.spec.step_ghz,
        batch_size=batch_size,
        num_collision_free=int(mask.sum()),
        confidence=confidence,
        ci_method=ci_method,
    )


def simulate_yield_with_devices(
    allocation: FrequencyAllocation,
    fabrication: FabricationModel,
    batch_size: int = DEFAULT_BATCH_SIZE,
    rng: np.random.Generator | None = None,
    thresholds: CollisionThresholds | None = None,
    draw_seed=None,
) -> tuple[YieldResult, np.ndarray]:
    """Like :func:`simulate_yield` but also return the surviving devices.

    Returns
    -------
    tuple
        ``(result, frequencies)`` where ``frequencies`` has shape
        ``(num_collision_free, num_qubits)`` and holds the sampled frequency
        profile of every collision-free device — the raw material for
        known-good-die binning and MCM assembly.
    """
    rng = rng or np.random.default_rng()
    frequencies = fabrication.sample_batch(
        allocation, batch_size, rng, draw_seed=draw_seed
    )
    mask = collision_free_mask(allocation, frequencies, thresholds)
    result = YieldResult(
        num_qubits=allocation.num_qubits,
        sigma_ghz=fabrication.sigma_ghz,
        step_ghz=allocation.spec.step_ghz,
        batch_size=batch_size,
        num_collision_free=int(mask.sum()),
    )
    return result, frequencies[mask]


# ---------------------------------------------------------------------- #
# Chunked sampling: the spawn-seeded scheme shared by every estimator
# ---------------------------------------------------------------------- #
def _chunk_frequencies(
    allocation: FrequencyAllocation,
    fabrication: FabricationModel,
    length: int,
    seed: int | None,
    chunk_index: int,
) -> np.ndarray:
    """Fabricate one spawn-seeded chunk of ``length`` devices.

    The chunk's derived seed doubles as the sample-bank draw key, so the
    in-process streaming path and the engine chunk tasks share banked
    base draws with every other sigma/step revisiting the same
    ``(seed, chunk_index, num_qubits, length)`` identity.
    """
    derived = chunk_seed(seed, chunk_index)
    rng = np.random.default_rng(derived)
    return fabrication.sample_batch(allocation, length, rng, draw_seed=derived)


def _chunk_counts(
    allocation: FrequencyAllocation,
    fabrication: FabricationModel,
    length: int,
    seed: int | None,
    chunk_index: int,
    thresholds: CollisionThresholds | None,
    tuning: TuningOptions | None,
) -> tuple[int, int, int, int, int]:
    """Fabricate, (optionally) repair and reduce one spawn-seeded chunk.

    Returns ``(num_free, length, num_repaired, tuned_qubits,
    total_tunes)``.  The repair stage continues the chunk's own
    generator after fabrication sampling, so the fabricated frequencies
    are bit-identical to the untuned chunk and the repair shots are a
    pure function of the chunk seed — whichever process runs the chunk.
    """
    derived = chunk_seed(seed, chunk_index)
    rng = np.random.default_rng(derived)
    frequencies = fabrication.sample_batch(allocation, length, rng, draw_seed=derived)
    if tuning is None:
        mask = collision_free_mask(allocation, frequencies, thresholds)
        return int(mask.sum()), length, 0, 0, 0
    outcome = repair_batch(allocation, frequencies, tuning, rng, thresholds)
    return (
        outcome.num_free,
        length,
        outcome.num_repaired,
        outcome.tuned_qubits,
        outcome.total_tunes,
    )


def _build_result(
    num_qubits: int,
    sigma_ghz: float,
    step_ghz: float,
    batch_size: int,
    num_collision_free: int,
    confidence: float,
    ci_method: str,
    tuning: TuningOptions | None,
    num_repaired: int,
    tuned_qubits: int,
    total_tunes: int,
) -> YieldResult:
    """A :class:`YieldResult`, upgraded to repaired form for tuned runs."""
    if tuning is None:
        return YieldResult(
            num_qubits=num_qubits,
            sigma_ghz=sigma_ghz,
            step_ghz=step_ghz,
            batch_size=batch_size,
            num_collision_free=num_collision_free,
            confidence=confidence,
            ci_method=ci_method,
        )
    return RepairedYieldResult(
        num_qubits=num_qubits,
        sigma_ghz=sigma_ghz,
        step_ghz=step_ghz,
        batch_size=batch_size,
        num_collision_free=num_collision_free,
        confidence=confidence,
        ci_method=ci_method,
        num_repaired=num_repaired,
        tuned_qubits=tuned_qubits,
        total_tunes=total_tunes,
    )


def materialize_seeded_batch(
    allocation: FrequencyAllocation,
    fabrication: FabricationModel,
    batch_size: int = DEFAULT_BATCH_SIZE,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    seed: int | None = None,
) -> np.ndarray:
    """The *monolithic* reference batch of the chunked sampling scheme.

    Fills every spawn-seeded chunk into one preallocated
    ``(batch_size, num_qubits)`` array — O(batch) memory (a chunk list +
    ``np.concatenate`` would briefly hold 2x that), exactly what
    :func:`simulate_yield_streaming` reduces chunk by chunk.  The parity
    tests pin the streamed, adaptive and chunk-parallel estimators to
    this array bit for bit.
    """
    out = np.empty((batch_size, allocation.num_qubits), dtype=np.float64)
    start = 0
    for index, length in enumerate(chunk_layout(batch_size, chunk_size)):
        out[start : start + length] = _chunk_frequencies(
            allocation, fabrication, length, seed, index
        )
        start += length
    return out


def simulate_yield_streaming(
    allocation: FrequencyAllocation,
    fabrication: FabricationModel,
    batch_size: int = DEFAULT_BATCH_SIZE,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    seed: int | None = None,
    thresholds: CollisionThresholds | None = None,
    confidence: float = DEFAULT_CONFIDENCE,
    ci_method: str = "wilson",
    tuning: TuningOptions | None = None,
) -> YieldResult:
    """Streaming chunked yield estimate in O(chunk_size) memory.

    Fabricate -> collision-mask -> reduce one chunk at a time: peak
    memory is one ``(chunk_size, num_qubits)`` array instead of the full
    ``(batch_size, num_qubits)`` batch, and the result is bit-identical
    to reducing :func:`materialize_seeded_batch` at the same
    ``(seed, chunk_size)``.  With ``tuning`` set, each chunk is repaired
    before reduction (same chunk-seed contract, see :func:`_chunk_counts`).
    """
    estimator = StreamingEstimator(confidence=confidence, method=ci_method)
    repaired = tuned_qubits = total_tunes = 0
    for index, length in enumerate(chunk_layout(batch_size, chunk_size)):
        free, trials, chunk_repaired, chunk_tuned, chunk_tunes = _chunk_counts(
            allocation, fabrication, length, seed, index, thresholds, tuning
        )
        estimator.update(free, trials)
        repaired += chunk_repaired
        tuned_qubits += chunk_tuned
        total_tunes += chunk_tunes
    return _build_result(
        num_qubits=allocation.num_qubits,
        sigma_ghz=fabrication.sigma_ghz,
        step_ghz=allocation.spec.step_ghz,
        batch_size=estimator.trials,
        num_collision_free=estimator.successes,
        confidence=confidence,
        ci_method=ci_method,
        tuning=tuning,
        num_repaired=repaired,
        tuned_qubits=tuned_qubits,
        total_tunes=total_tunes,
    )


def simulate_yield_adaptive(
    allocation: FrequencyAllocation,
    fabrication: FabricationModel,
    ci_target: float,
    max_samples: int = DEFAULT_BATCH_SIZE,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    seed: int | None = None,
    thresholds: CollisionThresholds | None = None,
    confidence: float = DEFAULT_CONFIDENCE,
    ci_method: str = "wilson",
    tuning: TuningOptions | None = None,
) -> YieldResult:
    """Adaptive yield estimate: sample until the CI is tight enough.

    Draws spawn-seeded chunks until the running CI half-width is at or
    below ``ci_target``, or ``max_samples`` devices have been fabricated
    — deep-in-the-tail points (yield near 0 or 1) stop after a chunk or
    two instead of burning the full fixed batch.  Because chunk seeds
    are prefix-stable, the samples an adaptive run observes are exactly
    the first ``samples_used`` rows of the fixed-batch run at the same
    ``(seed, chunk_size)``.  With ``tuning`` set, each drawn chunk is
    repaired before it reaches the stopping rule.
    """
    repair_totals = [0, 0, 0]

    def draw_chunk(chunk_index: int, length: int) -> tuple[int, int]:
        free, trials, chunk_repaired, chunk_tuned, chunk_tunes = _chunk_counts(
            allocation, fabrication, length, seed, chunk_index, thresholds, tuning
        )
        repair_totals[0] += chunk_repaired
        repair_totals[1] += chunk_tuned
        repair_totals[2] += chunk_tunes
        return free, trials

    outcome = adaptive_estimate(
        draw_chunk,
        ci_target=ci_target,
        max_samples=max_samples,
        chunk_size=chunk_size,
        confidence=confidence,
        method=ci_method,
    )
    return _build_result(
        num_qubits=allocation.num_qubits,
        sigma_ghz=fabrication.sigma_ghz,
        step_ghz=allocation.spec.step_ghz,
        batch_size=outcome.trials,
        num_collision_free=outcome.successes,
        confidence=confidence,
        ci_method=ci_method,
        tuning=tuning,
        num_repaired=repair_totals[0],
        tuned_qubits=repair_totals[1],
        total_tunes=repair_totals[2],
    )


def simulate_yield_chunk(
    sigma_ghz: float,
    step_ghz: float,
    num_qubits: int,
    chunk_length: int,
    seed: int | None,
    thresholds: CollisionThresholds | None = None,
    lattice: Lattice | None = None,
    topology: str | None = None,
    tuning: TuningOptions | None = None,
) -> tuple[int, ...]:
    """One spawn-seeded chunk as a self-contained engine task.

    ``seed`` here is the *chunk's own* derived seed (see
    :func:`repro.stats.streaming.chunk_seed`), so the task is a pure,
    picklable function of its arguments and can run in any worker
    process.  Returns ``(num_collision_free, chunk_length)``; with
    ``tuning`` set the tuple extends to ``(num_collision_free,
    chunk_length, num_repaired, tuned_qubits, total_tunes)``.
    """
    arch = get_architecture(topology)
    if lattice is None:
        lattice = arch.lattice(num_qubits)
    allocation = arch.allocate(lattice, spec=arch.spec(step_ghz=step_ghz))
    fabrication = FabricationModel(sigma_ghz=sigma_ghz)
    rng = np.random.default_rng(seed)
    frequencies = fabrication.sample_batch(allocation, chunk_length, rng, draw_seed=seed)
    if tuning is None:
        mask = collision_free_mask(allocation, frequencies, thresholds)
        return int(mask.sum()), chunk_length
    outcome = repair_batch(allocation, frequencies, tuning, rng, thresholds)
    return (
        outcome.num_free,
        chunk_length,
        outcome.num_repaired,
        outcome.tuned_qubits,
        outcome.total_tunes,
    )


def simulate_yield_chunks(
    sigma_ghz: float,
    step_ghz: float,
    num_qubits: int,
    batch_size: int = DEFAULT_BATCH_SIZE,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    seed: int | None = None,
    thresholds: CollisionThresholds | None = None,
    lattice: Lattice | None = None,
    executor=None,
    confidence: float = DEFAULT_CONFIDENCE,
    ci_method: str = "wilson",
    topology: str | None = None,
    tuning: TuningOptions | None = None,
) -> YieldResult:
    """The chunked estimate with chunks fanned out as engine tasks.

    Each chunk becomes one :func:`simulate_yield_chunk` task carrying its
    pre-derived spawn seed; results are reduced in submission order, so
    the estimate is bit-identical to :func:`simulate_yield_streaming`
    (and to the materialised monolithic batch) no matter how many worker
    processes execute the chunks.  With ``tuning`` set each chunk task
    repairs its own devices (the option joins the task kwargs, and
    therefore the cache key, only when enabled).
    """
    if lattice is None:
        lattice = get_architecture(topology).lattice(num_qubits)
    kwargs_list = [
        dict(
            sigma_ghz=sigma_ghz,
            step_ghz=step_ghz,
            num_qubits=num_qubits,
            chunk_length=length,
            seed=chunk_seed(seed, index),
            thresholds=thresholds,
            lattice=lattice,
            **_topology_kwargs(topology),
            **_tuning_kwargs(tuning),
        )
        for index, length in enumerate(chunk_layout(batch_size, chunk_size))
    ]
    estimator = StreamingEstimator(confidence=confidence, method=ci_method)
    repaired = tuned_qubits = total_tunes = 0
    for counts in _run_points(
        simulate_yield_chunk, kwargs_list, executor, "yield.chunk"
    ):
        estimator.update(counts[0], counts[1])
        if len(counts) > 2:
            repaired += counts[2]
            tuned_qubits += counts[3]
            total_tunes += counts[4]
    return _build_result(
        num_qubits=lattice.num_qubits,
        sigma_ghz=sigma_ghz,
        step_ghz=step_ghz,
        batch_size=estimator.trials,
        num_collision_free=estimator.successes,
        confidence=confidence,
        ci_method=ci_method,
        tuning=tuning,
        num_repaired=repaired,
        tuned_qubits=tuned_qubits,
        total_tunes=total_tunes,
    )


def simulate_yield_point(
    sigma_ghz: float,
    step_ghz: float,
    num_qubits: int,
    batch_size: int = DEFAULT_BATCH_SIZE,
    seed: int | None = None,
    thresholds: CollisionThresholds | None = None,
    lattice: Lattice | None = None,
    chunk_size: int | None = None,
    ci_target: float | None = None,
    max_samples: int | None = None,
    confidence: float = DEFAULT_CONFIDENCE,
    ci_method: str = "wilson",
    topology: str | None = None,
    tuning: TuningOptions | None = None,
) -> YieldResult:
    """One self-contained (sigma, step, size) Monte-Carlo point.

    This is the unit of work the sweep entry points submit to the engine:
    a module-level function of picklable arguments, so it runs identically
    in a worker process and in the calling process.  ``topology`` selects
    the registered architecture (lattice factory + frequency plan);
    heavy-hex when omitted.  The statistics parameters select the
    sampler:

    * ``ci_target`` set — adaptive chunked sampling, capped at
      ``max_samples`` (``batch_size`` when unset);
    * ``chunk_size`` set (no target) — streaming chunked sampling of the
      full ``batch_size`` in O(chunk) memory;
    * neither — the legacy monolithic single-draw batch.

    ``tuning`` routes every sampler through the post-fabrication repair
    stage.  All statistics, topology and tuning parameters participate
    in the engine's cache key, so changing any of them invalidates
    previously cached points.
    """
    arch = get_architecture(topology)
    if lattice is None:
        lattice = arch.lattice(num_qubits)
    allocation = arch.allocate(lattice, spec=arch.spec(step_ghz=step_ghz))
    fabrication = FabricationModel(sigma_ghz=sigma_ghz)
    if ci_target is not None:
        return simulate_yield_adaptive(
            allocation,
            fabrication,
            ci_target=ci_target,
            max_samples=max_samples if max_samples is not None else batch_size,
            chunk_size=chunk_size if chunk_size is not None else DEFAULT_CHUNK_SIZE,
            seed=seed,
            thresholds=thresholds,
            confidence=confidence,
            ci_method=ci_method,
            tuning=tuning,
        )
    if chunk_size is not None:
        return simulate_yield_streaming(
            allocation,
            fabrication,
            batch_size=batch_size,
            chunk_size=chunk_size,
            seed=seed,
            thresholds=thresholds,
            confidence=confidence,
            ci_method=ci_method,
            tuning=tuning,
        )
    return simulate_yield(
        allocation,
        fabrication,
        batch_size,
        np.random.default_rng(seed),
        thresholds,
        confidence=confidence,
        ci_method=ci_method,
        tuning=tuning,
        draw_seed=seed,
    )




def _stats_point_kwargs(stats: StatsOptions | None) -> dict:
    """Per-point kwargs encoding the statistics options.

    Returned empty when no option was set, so legacy sweeps keep their
    exact parameter sets (and therefore their engine cache keys).
    """
    if stats is None or stats.is_default:
        return {}
    return dict(
        chunk_size=stats.chunk_size,
        ci_target=stats.ci_target,
        max_samples=stats.max_samples,
        confidence=stats.confidence,
        ci_method=stats.method,
    )


def _topology_kwargs(topology: str | None) -> dict:
    """Per-point kwargs encoding the topology selection.

    Like :func:`_stats_point_kwargs`, returned empty for the default so
    heavy-hex sweeps keep their exact parameter sets and cache keys;
    any other topology becomes part of every point's cache identity.
    """
    if topology is None or topology == DEFAULT_TOPOLOGY:
        return {}
    return dict(topology=topology)


def _tuning_kwargs(tuning: TuningOptions | None) -> dict:
    """Per-point kwargs encoding the post-fabrication repair options.

    Returned empty when tuning is disabled, so untuned sweeps keep their
    exact parameter sets and engine cache keys; an enabled
    :class:`TuningOptions` (a frozen dataclass tree) becomes part of
    every point's cache identity.
    """
    if tuning is None:
        return {}
    return dict(tuning=tuning)


def yield_vs_qubits(
    sigma_ghz: float,
    step_ghz: float,
    sizes: tuple[int, ...] = DEFAULT_SIZE_GRID,
    batch_size: int = DEFAULT_BATCH_SIZE,
    seed: int | None = 7,
    thresholds: CollisionThresholds | None = None,
    lattices: dict[int, Lattice] | None = None,
    executor=None,
    stats: StatsOptions | None = None,
    topology: str | None = None,
    tuning: TuningOptions | None = None,
) -> YieldCurve:
    """Collision-free yield curve over a range of device sizes.

    Parameters
    ----------
    sigma_ghz:
        Fabrication precision of the batch.
    step_ghz:
        Ideal detuning between consecutive frequencies.
    sizes:
        Device sizes (qubits) to probe.
    batch_size:
        Devices fabricated per size.
    seed:
        Master seed; each size derives its own child seed by position, so
        results do not depend on execution order (``None`` for
        non-deterministic sampling).
    thresholds:
        Collision windows.
    lattices:
        Optional cache mapping size -> pre-built lattice, to avoid repeating
        the lattice search across parameter points.
    executor:
        Optional engine hook (``map_calls``); ``None`` runs in-process.
    stats:
        Optional :class:`repro.stats.StatsOptions` switching every point
        to chunked streaming / adaptive sampling with CIs at the
        requested confidence.
    topology:
        Registered topology name (heavy-hex when omitted).
    tuning:
        Optional post-fabrication repair options applied at every point.
    """
    arch = get_architecture(topology)
    curve = YieldCurve(sigma_ghz=sigma_ghz, step_ghz=step_ghz)
    stats_kwargs = _stats_point_kwargs(stats)
    topo_kwargs = _topology_kwargs(topology)
    tuning_kwargs = _tuning_kwargs(tuning)
    kwargs_list = []
    for size, child_seed in zip(sizes, _point_seeds(seed, len(sizes))):
        if lattices is not None and size in lattices:
            lattice = lattices[size]
        else:
            lattice = arch.lattice(size)
            if lattices is not None:
                lattices[size] = lattice
        kwargs_list.append(
            dict(
                sigma_ghz=sigma_ghz,
                step_ghz=step_ghz,
                num_qubits=size,
                batch_size=batch_size,
                seed=child_seed,
                thresholds=thresholds,
                lattice=lattice,
                **stats_kwargs,
                **topo_kwargs,
                **tuning_kwargs,
            )
        )
    curve.points.extend(
        _run_points(simulate_yield_point, kwargs_list, executor, "yield.point")
    )
    return curve


def detuning_sweep(
    steps_ghz: tuple[float, ...] = (0.04, 0.05, 0.06, 0.07),
    sigmas_ghz: tuple[float, ...] = (0.1323, 0.014, 0.006),
    sizes: tuple[int, ...] = DEFAULT_SIZE_GRID,
    batch_size: int = DEFAULT_BATCH_SIZE,
    seed: int | None = 7,
    thresholds: CollisionThresholds | None = None,
    executor=None,
    stats: StatsOptions | None = None,
    topology: str | None = None,
    tuning: TuningOptions | None = None,
    share_draws: bool = False,
) -> dict[tuple[float, float], YieldCurve]:
    """The full Fig. 4 grid: one yield curve per (step, sigma) combination.

    The grid is flattened into one task batch — ``len(steps) * len(sigmas)
    * len(sizes)`` independent points — before submission, so a parallel
    engine sees the full width of the sweep at once.  Seeding is two-level:
    the master seed spawns one child seed per (step, sigma) curve, and each
    curve spawns per-size point seeds from its child — positionally, never
    by execution order, so the output is independent of both the executor
    and the flattening.  (A curve of this grid therefore matches a lone
    :func:`yield_vs_qubits` call at the curve's *derived* seed, not at the
    master seed.)

    ``share_draws=True`` declares (step, sigma) as the shared-draw axis:
    every combination reuses ONE derived curve seed, so all curves
    fabricate the *same* virtual devices per size — the classic
    common-random-number design (adjacent sweep points compare identical
    noise instead of resampled noise), and the sample bank turns the
    whole grid into one sampling pass per size plus cheap affine
    re-scalings.  The default resamples per combination, preserving the
    historical seed derivation (and the committed goldens) exactly.

    Returns
    -------
    dict
        Mapping ``(step_ghz, sigma_ghz) -> YieldCurve``.
    """
    arch = get_architecture(topology)
    combos = [(step, sigma) for step in steps_ghz for sigma in sigmas_ghz]
    if share_draws:
        curve_seeds = [_point_seeds(seed, 1)[0]] * len(combos)
    else:
        curve_seeds = _point_seeds(seed, len(combos))
    stats_kwargs = _stats_point_kwargs(stats)
    topo_kwargs = _topology_kwargs(topology)
    tuning_kwargs = _tuning_kwargs(tuning)

    lattices: dict[int, Lattice] = {}
    for size in sizes:
        lattices[size] = arch.lattice(size)

    kwargs_list = []
    for (step, sigma), curve_seed in zip(combos, curve_seeds):
        for size, child_seed in zip(sizes, _point_seeds(curve_seed, len(sizes))):
            kwargs_list.append(
                dict(
                    sigma_ghz=sigma,
                    step_ghz=step,
                    num_qubits=size,
                    batch_size=batch_size,
                    seed=child_seed,
                    thresholds=thresholds,
                    lattice=lattices[size],
                    **stats_kwargs,
                    **topo_kwargs,
                    **tuning_kwargs,
                )
            )

    points = _run_points(simulate_yield_point, kwargs_list, executor, "yield.point")
    curves: dict[tuple[float, float], YieldCurve] = {}
    for combo_index, (step, sigma) in enumerate(combos):
        curve = YieldCurve(sigma_ghz=sigma, step_ghz=step)
        curve.points.extend(
            points[combo_index * len(sizes) : (combo_index + 1) * len(sizes)]
        )
        curves[(step, sigma)] = curve
    return curves
