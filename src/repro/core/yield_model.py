"""Monte-Carlo collision-free yield model (paper Section IV-B, Fig. 4).

The simulation virtually fabricates a batch of heavy-hex devices, samples
their qubit frequencies from the fabrication model, evaluates the seven
Table I collision criteria, and reports the fraction of devices with no
collision — the *collision-free yield*.

Key entry points
----------------
:func:`simulate_yield`
    Yield for one topology / one (sigma_f, step) parameter point.
:func:`yield_vs_qubits`
    Yield curve over a range of device sizes (one curve of Fig. 4).
:func:`detuning_sweep`
    The full Fig. 4 grid: yield vs. qubits for several detuning steps and
    fabrication precisions.

Both sweep entry points accept an ``executor`` hook — any object with a
``map_calls(fn, kwargs_list, name=...)`` method, in practice a
:class:`repro.engine.ExecutionEngine` — and submit one task per
(sigma, step, size) point.  Each point derives its own seed from the
master seed by position (``np.random.SeedSequence.spawn``), so parallel
and sequential runs are bit-identical at the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.collisions import CollisionThresholds, collision_free_mask
from repro.core.fabrication import FabricationModel
from repro.core.frequencies import (
    FrequencyAllocation,
    FrequencySpec,
    allocate_heavy_hex_frequencies,
)

# Shared with the engine: positional child-seed derivation (execution order
# never changes a point's stream) and the executor dispatch.  Note this
# imports the repro.engine package (stdlib + numpy only, no third-party
# deps); core calls nothing beyond these two helpers at runtime.
from repro.engine.dispatch import run_calls as _run_points
from repro.engine.seeding import spawn_seeds as _point_seeds
from repro.topology.heavy_hex import HeavyHexLattice, heavy_hex_by_qubit_count

__all__ = [
    "YieldResult",
    "YieldCurve",
    "simulate_yield",
    "simulate_yield_point",
    "simulate_yield_with_devices",
    "yield_vs_qubits",
    "detuning_sweep",
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_SIZE_GRID",
]

#: Batch size used for the paper's Fig. 4 Monte-Carlo runs.
DEFAULT_BATCH_SIZE = 1000

#: Device sizes (qubits) probed by the yield-vs-size curves.
DEFAULT_SIZE_GRID = (
    5, 10, 16, 20, 27, 40, 50, 65, 80, 100, 127, 160, 200, 250, 300,
    400, 500, 650, 800, 1000,
)


@dataclass(frozen=True)
class YieldResult:
    """Collision-free yield at a single parameter point.

    Attributes
    ----------
    num_qubits:
        Device size in qubits.
    sigma_ghz:
        Fabrication precision used for the batch.
    step_ghz:
        Ideal detuning between F0/F1/F2.
    batch_size:
        Number of simulated devices.
    num_collision_free:
        Devices that passed every Table I criterion.
    """

    num_qubits: int
    sigma_ghz: float
    step_ghz: float
    batch_size: int
    num_collision_free: int

    @property
    def collision_free_yield(self) -> float:
        """Fraction of devices with no frequency collision."""
        return self.num_collision_free / self.batch_size


@dataclass
class YieldCurve:
    """Collision-free yield as a function of device size.

    ``points`` is append-only and holds each size at most once — that is
    the contract the O(1) size lookups rely on.  The backing index is
    rebuilt when points were appended since the last lookup (and once
    more on a missed lookup); replacing or reordering entries in place is
    unsupported and may serve a stale point.
    """

    sigma_ghz: float
    step_ghz: float
    points: list[YieldResult] = field(default_factory=list)
    _index: dict[int, YieldResult] = field(
        default_factory=dict, repr=False, compare=False
    )

    def _point_index(self, rebuild: bool = False) -> dict[int, YieldResult]:
        if rebuild or len(self._index) != len(self.points):
            self._index.clear()
            self._index.update({p.num_qubits: p for p in self.points})
        return self._index

    @property
    def sizes(self) -> list[int]:
        """Device sizes along the curve."""
        return [p.num_qubits for p in self.points]

    @property
    def yields(self) -> list[float]:
        """Collision-free yields along the curve."""
        return [p.collision_free_yield for p in self.points]

    def at_size(self, num_qubits: int) -> YieldResult:
        """The full :class:`YieldResult` for one size, via an O(1) lookup."""
        try:
            return self._point_index()[num_qubits]
        except KeyError:
            pass
        try:
            return self._point_index(rebuild=True)[num_qubits]
        except KeyError:
            raise KeyError(f"size {num_qubits} not present in the curve") from None

    def yield_at(self, num_qubits: int) -> float:
        """Yield for a specific size (raises if the size was not simulated)."""
        return self.at_size(num_qubits).collision_free_yield


def simulate_yield(
    allocation: FrequencyAllocation,
    fabrication: FabricationModel,
    batch_size: int = DEFAULT_BATCH_SIZE,
    rng: np.random.Generator | None = None,
    thresholds: CollisionThresholds | None = None,
) -> YieldResult:
    """Monte-Carlo collision-free yield for one topology.

    Parameters
    ----------
    allocation:
        Frequency plan of the device under test.
    fabrication:
        Gaussian frequency-scatter model.
    batch_size:
        Number of devices to fabricate virtually.
    rng:
        Source of randomness (a fresh default generator when omitted).
    thresholds:
        Collision windows; defaults to the Table I values.
    """
    rng = rng or np.random.default_rng()
    frequencies = fabrication.sample_batch(allocation, batch_size, rng)
    mask = collision_free_mask(allocation, frequencies, thresholds)
    return YieldResult(
        num_qubits=allocation.num_qubits,
        sigma_ghz=fabrication.sigma_ghz,
        step_ghz=allocation.spec.step_ghz,
        batch_size=batch_size,
        num_collision_free=int(mask.sum()),
    )


def simulate_yield_with_devices(
    allocation: FrequencyAllocation,
    fabrication: FabricationModel,
    batch_size: int = DEFAULT_BATCH_SIZE,
    rng: np.random.Generator | None = None,
    thresholds: CollisionThresholds | None = None,
) -> tuple[YieldResult, np.ndarray]:
    """Like :func:`simulate_yield` but also return the surviving devices.

    Returns
    -------
    tuple
        ``(result, frequencies)`` where ``frequencies`` has shape
        ``(num_collision_free, num_qubits)`` and holds the sampled frequency
        profile of every collision-free device — the raw material for
        known-good-die binning and MCM assembly.
    """
    rng = rng or np.random.default_rng()
    frequencies = fabrication.sample_batch(allocation, batch_size, rng)
    mask = collision_free_mask(allocation, frequencies, thresholds)
    result = YieldResult(
        num_qubits=allocation.num_qubits,
        sigma_ghz=fabrication.sigma_ghz,
        step_ghz=allocation.spec.step_ghz,
        batch_size=batch_size,
        num_collision_free=int(mask.sum()),
    )
    return result, frequencies[mask]


def simulate_yield_point(
    sigma_ghz: float,
    step_ghz: float,
    num_qubits: int,
    batch_size: int = DEFAULT_BATCH_SIZE,
    seed: int | None = None,
    thresholds: CollisionThresholds | None = None,
    lattice: HeavyHexLattice | None = None,
) -> YieldResult:
    """One self-contained (sigma, step, size) Monte-Carlo point.

    This is the unit of work the sweep entry points submit to the engine:
    a module-level function of picklable arguments, so it runs identically
    in a worker process and in the calling process.
    """
    if lattice is None:
        lattice = heavy_hex_by_qubit_count(num_qubits)
    allocation = allocate_heavy_hex_frequencies(
        lattice, spec=FrequencySpec(step_ghz=step_ghz)
    )
    return simulate_yield(
        allocation,
        FabricationModel(sigma_ghz=sigma_ghz),
        batch_size,
        np.random.default_rng(seed),
        thresholds,
    )




def yield_vs_qubits(
    sigma_ghz: float,
    step_ghz: float,
    sizes: tuple[int, ...] = DEFAULT_SIZE_GRID,
    batch_size: int = DEFAULT_BATCH_SIZE,
    seed: int | None = 7,
    thresholds: CollisionThresholds | None = None,
    lattices: dict[int, HeavyHexLattice] | None = None,
    executor=None,
) -> YieldCurve:
    """Collision-free yield curve over a range of heavy-hex device sizes.

    Parameters
    ----------
    sigma_ghz:
        Fabrication precision of the batch.
    step_ghz:
        Ideal detuning between F0, F1 and F2.
    sizes:
        Device sizes (qubits) to probe.
    batch_size:
        Devices fabricated per size.
    seed:
        Master seed; each size derives its own child seed by position, so
        results do not depend on execution order (``None`` for
        non-deterministic sampling).
    thresholds:
        Collision windows.
    lattices:
        Optional cache mapping size -> pre-built lattice, to avoid repeating
        the lattice search across parameter points.
    executor:
        Optional engine hook (``map_calls``); ``None`` runs in-process.
    """
    curve = YieldCurve(sigma_ghz=sigma_ghz, step_ghz=step_ghz)
    kwargs_list = []
    for size, child_seed in zip(sizes, _point_seeds(seed, len(sizes))):
        if lattices is not None and size in lattices:
            lattice = lattices[size]
        else:
            lattice = heavy_hex_by_qubit_count(size)
            if lattices is not None:
                lattices[size] = lattice
        kwargs_list.append(
            dict(
                sigma_ghz=sigma_ghz,
                step_ghz=step_ghz,
                num_qubits=size,
                batch_size=batch_size,
                seed=child_seed,
                thresholds=thresholds,
                lattice=lattice,
            )
        )
    curve.points.extend(
        _run_points(simulate_yield_point, kwargs_list, executor, "yield.point")
    )
    return curve


def detuning_sweep(
    steps_ghz: tuple[float, ...] = (0.04, 0.05, 0.06, 0.07),
    sigmas_ghz: tuple[float, ...] = (0.1323, 0.014, 0.006),
    sizes: tuple[int, ...] = DEFAULT_SIZE_GRID,
    batch_size: int = DEFAULT_BATCH_SIZE,
    seed: int | None = 7,
    thresholds: CollisionThresholds | None = None,
    executor=None,
) -> dict[tuple[float, float], YieldCurve]:
    """The full Fig. 4 grid: one yield curve per (step, sigma) combination.

    The grid is flattened into one task batch — ``len(steps) * len(sigmas)
    * len(sizes)`` independent points — before submission, so a parallel
    engine sees the full width of the sweep at once.  Seeding is two-level:
    the master seed spawns one child seed per (step, sigma) curve, and each
    curve spawns per-size point seeds from its child — positionally, never
    by execution order, so the output is independent of both the executor
    and the flattening.  (A curve of this grid therefore matches a lone
    :func:`yield_vs_qubits` call at the curve's *derived* seed, not at the
    master seed.)

    Returns
    -------
    dict
        Mapping ``(step_ghz, sigma_ghz) -> YieldCurve``.
    """
    combos = [(step, sigma) for step in steps_ghz for sigma in sigmas_ghz]
    curve_seeds = _point_seeds(seed, len(combos))

    lattices: dict[int, HeavyHexLattice] = {}
    for size in sizes:
        lattices[size] = heavy_hex_by_qubit_count(size)

    kwargs_list = []
    for (step, sigma), curve_seed in zip(combos, curve_seeds):
        for size, child_seed in zip(sizes, _point_seeds(curve_seed, len(sizes))):
            kwargs_list.append(
                dict(
                    sigma_ghz=sigma,
                    step_ghz=step,
                    num_qubits=size,
                    batch_size=batch_size,
                    seed=child_seed,
                    thresholds=thresholds,
                    lattice=lattices[size],
                )
            )

    points = _run_points(simulate_yield_point, kwargs_list, executor, "yield.point")
    curves: dict[tuple[float, float], YieldCurve] = {}
    for combo_index, (step, sigma) in enumerate(combos):
        curve = YieldCurve(sigma_ghz=sigma, step_ghz=step)
        curve.points.extend(
            points[combo_index * len(sizes) : (combo_index + 1) * len(sizes)]
        )
        curves[(step, sigma)] = curve
    return curves
