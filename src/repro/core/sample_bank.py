"""Common-random-number bank of standard-normal fabrication draws.

The fabrication model (paper Section III-C) is a pure affine transform of
standard-normal draws: ``f = ideal + sigma * z``.  NumPy's
``Generator.normal(0, sigma, size)`` is bitwise identical to
``sigma * standard_normal(size)`` at the same generator state (pinned by
the property suite in ``tests/test_sample_bank.py``), so the base draws
``z`` depend only on the seed and the batch shape — not on sigma, not on
the detuning step.  A sweep that holds its seed fixed while scanning
sigma or step therefore re-draws the *same* ``z`` at every grid cell.

This module banks those draws: a content-addressed, memory-capped LRU
keyed on ``(draw_seed, shape)`` — for the chunked estimators that is the
``(seed, chunk_index, num_qubits, length)`` identity, since the chunk's
own derived seed (see :func:`repro.stats.streaming.chunk_seed`) encodes
``(seed, chunk_index)`` and the shape encodes ``(length, num_qubits)``.
A 20-sigma sweep then does ONE sampling pass and 19 cheap affine
re-scalings, bit-identical to re-sampling.

Determinism contract
--------------------
``draw_seed`` must be exactly the seed the supplied generator was
freshly constructed from, with no draws taken yet.  The bank *verifies*
this on every call (a fresh ``default_rng(draw_seed)`` state compare,
microseconds against a chunk of normals) and silently falls back to
plain sampling on mismatch (counted as a ``bypass``), so a violated
contract can never produce wrong samples.  Each entry stores the
generator state *after* the draw and restores it on a hit, so downstream
consumers of the same generator — the repair stream continuing a chunk's
rng — observe literally the same stream whether the draw was banked or
not.

Because ziggurat sampling consumes a variable number of raw words per
normal, the end state cannot be recomputed cheaply — storing it is what
makes hits safe for continued generators.

The bank is process-global: fused engine super-tasks running several
yield points in one worker share it for free, the same per-worker
contract as the routing cache (PR 8).  Counters mirror into the process
metrics registry as ``repro_sample_bank_events_total{event}`` so worker
deltas ship home through the engine's existing metrics merge.

Opting out
----------
Set ``REPRO_SAMPLE_BANK=0`` (or ``false``/``off``/``no``), pass
``--no-sample-bank`` to the CLI, or call
``set_sample_bank_enabled(False)``.  Disabled calls sample directly from
the supplied generator — bit-identical output, no caching, no counters.
``REPRO_SAMPLE_BANK_BYTES`` overrides the default 256 MiB cap of the
global bank.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Hashable

import numpy as np

from repro.obs.metrics import REGISTRY

__all__ = [
    "SampleBank",
    "banked_standard_normal",
    "sample_bank_enabled",
    "set_sample_bank_enabled",
    "sample_bank_stats",
    "clear_sample_bank",
    "DEFAULT_SAMPLE_BANK_BYTES",
    "SAMPLE_BANK_ENV",
    "SAMPLE_BANK_BYTES_ENV",
]

#: Opt-out switch — any of 0/false/off/no disables banking process-wide.
SAMPLE_BANK_ENV = "REPRO_SAMPLE_BANK"

#: Byte-cap override for the global bank.
SAMPLE_BANK_BYTES_ENV = "REPRO_SAMPLE_BANK_BYTES"

#: Default memory cap.  A full Fig. 4 size grid at batch 1000 banks
#: ~45 MB of draws; 256 MiB leaves room for study-sized monolithic
#: batches without letting a worker process balloon.
DEFAULT_SAMPLE_BANK_BYTES = 256 * 1024 * 1024

#: Mirror of the per-bank stats dict on the process metrics registry —
#: worker processes increment their local registry and the engine merges
#: the shipped deltas, so ``/metrics`` sees bank traffic from every
#: process (same shape as ``repro_routing_cache_events_total``).
_BANK_EVENTS = REGISTRY.counter(
    "repro_sample_bank_events_total",
    "Sample bank traffic by outcome (hit, miss, eviction, bypass, oversize)",
    labels=("event",),
)


class SampleBank:
    """Content-addressed, byte-capped LRU of standard-normal chunks.

    Entries map ``(draw_seed, shape)`` to the read-only draw array plus
    the generator state after drawing it.  Thread-safe; generation
    happens under the lock (NumPy's sampler holds the GIL anyway, so
    serialising it costs threads nothing).
    """

    def __init__(self, max_bytes: int | None = None) -> None:
        if max_bytes is None:
            max_bytes = int(
                os.environ.get(SAMPLE_BANK_BYTES_ENV, DEFAULT_SAMPLE_BANK_BYTES)
            )
        if max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        self.max_bytes = max_bytes
        self._entries: OrderedDict[tuple, tuple[np.ndarray, dict]] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self._stats = {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "bypasses": 0,
            "oversize": 0,
        }

    def standard_normal(
        self,
        draw_seed: Hashable,
        shape: tuple[int, ...],
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Banked ``rng.standard_normal(shape)``.

        ``rng`` must be freshly constructed from ``draw_seed``; hits
        restore the post-draw state so continued use of ``rng`` is
        bit-identical to having sampled.  The returned array is marked
        read-only (hits alias the stored entry) — scale it, don't
        mutate it.
        """
        try:
            key = (draw_seed, tuple(shape))
            hash(key)  # a list seed is seedable but not content-addressable
            fresh = np.random.default_rng(draw_seed).bit_generator.state
        except TypeError:
            # Unhashable or un-seedable draw key: not bankable.
            self._count("bypasses", "bypass")
            return rng.standard_normal(shape)
        if rng.bit_generator.state != fresh:
            # The generator was not freshly seeded with draw_seed — the
            # caller broke the keying contract.  Sampling directly is
            # always correct; banking here would poison future hits.
            self._count("bypasses", "bypass")
            return rng.standard_normal(shape)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                draws, end_state = entry
                self._entries.move_to_end(key)
                self._stats["hits"] += 1
                _BANK_EVENTS.inc(event="hit")
                rng.bit_generator.state = end_state
                return draws
            self._stats["misses"] += 1
            _BANK_EVENTS.inc(event="miss")
            draws = rng.standard_normal(shape)
            draws.flags.writeable = False
            if draws.nbytes > self.max_bytes:
                self._stats["oversize"] += 1
                _BANK_EVENTS.inc(event="oversize")
                return draws
            self._entries[key] = (draws, rng.bit_generator.state)
            self._bytes += draws.nbytes
            while self._bytes > self.max_bytes and self._entries:
                _, (evicted, _) = self._entries.popitem(last=False)
                self._bytes -= evicted.nbytes
                self._stats["evictions"] += 1
                _BANK_EVENTS.inc(event="eviction")
            return draws

    def _count(self, stat: str, event: str) -> None:
        with self._lock:
            self._stats[stat] += 1
        _BANK_EVENTS.inc(event=event)

    def stats(self) -> dict:
        """Counters + occupancy of this bank."""
        with self._lock:
            return {**self._stats, "entries": len(self._entries), "bytes": self._bytes}

    def clear(self) -> None:
        """Drop every banked chunk and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            for counter in self._stats:
                self._stats[counter] = 0


#: The process-wide bank every fabrication call shares.
_BANK = SampleBank()

#: Programmatic enable/disable; ``None`` defers to the environment.
_ENABLED_OVERRIDE: bool | None = None


def sample_bank_enabled() -> bool:
    """Whether banking is active (programmatic override, then env var)."""
    if _ENABLED_OVERRIDE is not None:
        return _ENABLED_OVERRIDE
    raw = os.environ.get(SAMPLE_BANK_ENV, "").strip().lower()
    return raw not in {"0", "false", "off", "no"}


def set_sample_bank_enabled(enabled: bool | None) -> None:
    """Force banking on/off for this process (``None`` restores env control)."""
    global _ENABLED_OVERRIDE
    _ENABLED_OVERRIDE = enabled


def banked_standard_normal(
    draw_seed: Hashable | None,
    shape: tuple[int, ...],
    rng: np.random.Generator,
) -> np.ndarray:
    """Standard-normal draws through the global bank.

    With ``draw_seed=None`` (no content identity) or banking disabled,
    samples directly from ``rng`` — bit-identical, no caching.
    """
    if draw_seed is None or not sample_bank_enabled():
        return rng.standard_normal(shape)
    return _BANK.standard_normal(draw_seed, shape, rng)


def sample_bank_stats() -> dict:
    """Counters + occupancy of the process-wide bank."""
    return {**_BANK.stats(), "enabled": sample_bank_enabled()}


def clear_sample_bank() -> None:
    """Drop every banked chunk in the process-wide bank."""
    _BANK.clear()
