"""Chiplet designs: small dies intended for MCM integration.

A :class:`ChipletDesign` is a lattice of any registered topology (see
:data:`repro.core.architecture.ARCHITECTURES`; heavy-hex by default)
with its topology's frequency plan applied, plus the bookkeeping needed
to stitch chiplets into a multi-chip module: which boundary qubits can
host an inter-chip link, and which labels their existing Cross-Resonance
targets carry (so that adding a link never creates an *ideal* Table I
collision).

The paper studies heavy-hex chiplets of 10, 20, 40, 60, 90, 120, 160,
200 and 250 qubits; :data:`PAPER_CHIPLET_SIZES` lists them and
:func:`ChipletDesign.build` constructs any size of any topology.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.architecture import DEFAULT_TOPOLOGY, get_architecture
from repro.core.collisions import find_collisions
from repro.core.frequencies import FrequencyAllocation, FrequencySpec
from repro.topology.base import Lattice

__all__ = ["ChipletDesign", "PAPER_CHIPLET_SIZES"]

#: Chiplet sizes evaluated in the paper (Section VII-B).
PAPER_CHIPLET_SIZES = (10, 20, 40, 60, 90, 120, 160, 200, 250)


@dataclass
class ChipletDesign:
    """A chiplet: lattice + frequency plan + link-site metadata.

    Attributes
    ----------
    lattice:
        The chiplet's qubit lattice (any registered topology).
    allocation:
        Ideal frequency plan of the chiplet.
    name:
        Identifier, e.g. ``"chiplet-20"``.
    """

    lattice: Lattice
    allocation: FrequencyAllocation
    name: str
    _row_boundaries: dict[str, dict[int, int]] = field(
        default_factory=dict, repr=False, compare=False
    )

    @classmethod
    def build(
        cls,
        num_qubits: int,
        spec: FrequencySpec | None = None,
        name: str | None = None,
        topology: str | None = None,
    ) -> "ChipletDesign":
        """Construct a chiplet with exactly ``num_qubits`` qubits.

        The underlying lattice comes from the registered topology's
        factory (heavy-hex when ``topology`` is omitted), the labels
        from its frequency plan, and the result must be ideally
        collision-free under the given frequency spec.
        """
        arch = get_architecture(topology)
        if name is not None:
            label = name
        elif arch.name == DEFAULT_TOPOLOGY:
            label = f"chiplet-{num_qubits}"
        else:
            label = f"chiplet-{arch.name}-{num_qubits}"
        lattice = arch.lattice(num_qubits, name=label)
        allocation = arch.allocate(lattice, spec=spec)
        design = cls(lattice=lattice, allocation=allocation, name=label)
        report = find_collisions(allocation, allocation.ideal_frequencies)
        if not report.is_collision_free:
            raise ValueError(
                f"chiplet design {label} has ideal-frequency collisions: "
                f"{report.counts_by_type()}"
            )
        return design

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_qubits(self) -> int:
        """Number of qubits on the chiplet."""
        return self.lattice.num_qubits

    @property
    def num_edges(self) -> int:
        """Number of on-chip couplings."""
        return self.lattice.num_edges

    @property
    def labels(self) -> np.ndarray:
        """Per-qubit frequency labels."""
        return self.allocation.labels

    def edges(self) -> list[tuple[int, int]]:
        """On-chip couplings as ``(low, high)`` pairs."""
        return list(self.lattice.edges)

    def control_target_labels(self) -> dict[int, list[int]]:
        """For every qubit acting as a control: the labels of its targets.

        MCM assembly uses this to verify that attaching an inter-chip link to
        a boundary qubit never gives a control two targets of the same label
        (which would be a guaranteed near-null, Type 5 collision).
        """
        targets: dict[int, list[int]] = {}
        for control, target in self.allocation.directed_edges:
            targets.setdefault(int(control), []).append(int(self.labels[target]))
        return targets

    # ------------------------------------------------------------------ #
    # Boundary / link-site helpers
    # ------------------------------------------------------------------ #
    def _boundary(self, side: str) -> dict[int, int]:
        """Boundary qubits keyed by row (left/right) or column (top/bottom)."""
        if side not in self._row_boundaries:
            if side == "right":
                qubits = self.lattice.boundary_right()
                keyed = {self.lattice.site(q).row: q for q in qubits}
            elif side == "left":
                qubits = self.lattice.boundary_left()
                keyed = {self.lattice.site(q).row: q for q in qubits}
            elif side == "bottom":
                qubits = self.lattice.boundary_bottom()
                keyed = {self.lattice.site(q).col: q for q in qubits}
            elif side == "top":
                qubits = self.lattice.boundary_top()
                keyed = {self.lattice.site(q).col: q for q in qubits}
            else:
                raise ValueError(f"unknown boundary side {side!r}")
            self._row_boundaries[side] = keyed
        return dict(self._row_boundaries[side])

    def boundary_qubits(self, side: str) -> dict[int, int]:
        """Boundary qubits of one side, keyed by dense row (or column).

        Parameters
        ----------
        side:
            One of ``"left"``, ``"right"``, ``"top"``, ``"bottom"``.
        """
        return self._boundary(side)
